"""Tests for the page-mapped FTL and its garbage collector."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd import Ftl, SsdGeometry
from repro.ssd.ftl import FtlError


@pytest.fixture
def geometry():
    return SsdGeometry(num_channels=4, blocks_per_channel=10, pages_per_block=32, overprovision=0.4)


@pytest.fixture
def ftl(geometry):
    return Ftl(geometry)


class TestMapping:
    def test_unwritten_lpn_is_unmapped(self, ftl):
        assert ftl.lookup(0) == -1

    def test_write_maps_lpn(self, ftl):
        ppn, _ = ftl.write_page(5)
        assert ftl.lookup(5) == ppn

    def test_overwrite_remaps(self, ftl):
        first, _ = ftl.write_page(5)
        second, _ = ftl.write_page(5)
        assert first != second
        assert ftl.lookup(5) == second

    def test_out_of_range_lpn_rejected(self, ftl, geometry):
        with pytest.raises(ValueError):
            ftl.write_page(geometry.exported_pages)
        with pytest.raises(ValueError):
            ftl.write_page(-1)

    def test_trim_unmaps(self, ftl):
        ftl.write_page(7)
        ftl.trim_page(7)
        assert ftl.lookup(7) == -1

    def test_trim_unwritten_is_noop(self, ftl):
        ftl.trim_page(3)
        assert ftl.lookup(3) == -1

    def test_sequential_writes_stripe_across_channels(self, ftl, geometry):
        channels = set()
        for lpn in range(geometry.num_channels):
            ppn, _ = ftl.write_page(lpn)
            channels.add(geometry.channel_of_page(ppn))
        assert channels == set(range(geometry.num_channels))

    def test_channel_of_unmapped_lpn_is_stable(self, ftl):
        assert ftl.channel_of_lpn(11) == ftl.channel_of_lpn(11)

    def test_no_two_lpns_share_a_physical_page(self, ftl, geometry):
        rng = random.Random(0)
        for _ in range(geometry.exported_pages * 2):
            ftl.write_page(rng.randrange(geometry.exported_pages))
        seen = {}
        for lpn in range(geometry.exported_pages):
            ppn = ftl.lookup(lpn)
            if ppn != -1:
                assert ppn not in seen, f"LPNs {seen[ppn]} and {lpn} share PPN {ppn}"
                seen[ppn] = lpn


class TestGarbageCollection:
    def test_fill_entire_device_succeeds(self, ftl, geometry):
        for lpn in range(geometry.exported_pages):
            ftl.write_page(lpn)
        assert ftl.mapped_pages == geometry.exported_pages

    def test_sustained_overwrite_never_exhausts(self, ftl, geometry):
        rng = random.Random(1)
        for lpn in range(geometry.exported_pages):
            ftl.write_page(lpn)
        for _ in range(geometry.exported_pages * 3):
            ftl.write_page(rng.randrange(geometry.exported_pages))
        ftl.check_invariants()

    def test_sequential_overwrite_has_low_write_amplification(self, ftl, geometry):
        for _ in range(2):
            for lpn in range(geometry.exported_pages):
                ftl.write_page(lpn)
        ftl.stats.host_programs = ftl.stats.gc_programs = 0
        for lpn in range(geometry.exported_pages):
            ftl.write_page(lpn)
        assert ftl.stats.write_amplification < 1.3

    def test_random_overwrite_amplifies_more_than_sequential(self):
        """Random overwrites fragment blocks and force valid-page relocation."""
        # Tighter overprovisioning than the fixture so fragmentation bites.
        geometry = SsdGeometry(
            num_channels=4, blocks_per_channel=20, pages_per_block=32, overprovision=0.2
        )

        def steady_state_wa(random_pattern):
            ftl = Ftl(geometry)
            rng = random.Random(2)
            for lpn in range(geometry.exported_pages):
                ftl.write_page(lpn)
            for _ in range(geometry.exported_pages * 2):
                if random_pattern:
                    ftl.write_page(rng.randrange(geometry.exported_pages))
                else:
                    pass
            if not random_pattern:
                for lpn in range(geometry.exported_pages):
                    ftl.write_page(lpn)
            ftl.stats.host_programs = ftl.stats.gc_programs = 0
            for i in range(geometry.exported_pages):
                if random_pattern:
                    ftl.write_page(rng.randrange(geometry.exported_pages))
                else:
                    ftl.write_page(i)
            return ftl.stats.write_amplification

        random_wa = steady_state_wa(random_pattern=True)
        sequential_wa = steady_state_wa(random_pattern=False)
        assert random_wa > 1.8
        assert random_wa > 1.5 * sequential_wa

    def test_gc_preserves_all_mappings(self, ftl, geometry):
        """GC relocation must never lose or corrupt a logical page."""
        rng = random.Random(3)
        shadow = {}
        for _ in range(geometry.exported_pages * 4):
            lpn = rng.randrange(geometry.exported_pages)
            ppn, _ = ftl.write_page(lpn)
            shadow[lpn] = True
        for lpn in shadow:
            assert ftl.lookup(lpn) != -1
        ftl.check_invariants()

    def test_gc_work_reported(self, ftl, geometry):
        rng = random.Random(4)
        for lpn in range(geometry.exported_pages):
            ftl.write_page(lpn)
        total_relocations = 0
        for _ in range(geometry.exported_pages):
            _, work = ftl.write_page(rng.randrange(geometry.exported_pages))
            assert work.relocation_reads == work.relocation_programs
            total_relocations += work.relocation_programs
        assert total_relocations > 0
        assert ftl.stats.gc_programs == total_relocations

    def test_erases_counted(self, ftl, geometry):
        for _ in range(3):
            for lpn in range(geometry.exported_pages):
                ftl.write_page(lpn)
        assert ftl.stats.erases > 0

    def test_free_blocks_stay_above_zero(self, ftl, geometry):
        rng = random.Random(5)
        for _ in range(geometry.exported_pages * 3):
            ftl.write_page(rng.randrange(geometry.exported_pages))
            for channel in range(geometry.num_channels):
                assert ftl.free_blocks_on_channel(channel) >= 0


class TestSnapshotRestore:
    def test_restore_reproduces_mappings(self, geometry):
        source = Ftl(geometry)
        rng = random.Random(6)
        for _ in range(geometry.exported_pages * 2):
            source.write_page(rng.randrange(geometry.exported_pages))
        snap = source.snapshot()
        target = Ftl(geometry)
        target.restore(snap)
        assert target.page_map == source.page_map
        target.check_invariants()

    def test_restored_ftl_keeps_working(self, geometry):
        source = Ftl(geometry)
        for lpn in range(geometry.exported_pages):
            source.write_page(lpn)
        target = Ftl(geometry)
        target.restore(source.snapshot())
        rng = random.Random(7)
        for _ in range(geometry.exported_pages):
            target.write_page(rng.randrange(geometry.exported_pages))
        target.check_invariants()

    def test_snapshot_is_isolated_from_source_mutation(self, geometry):
        source = Ftl(geometry)
        source.write_page(0)
        snap = source.snapshot()
        source.write_page(1)
        target = Ftl(geometry)
        target.restore(snap)
        assert target.lookup(1) == -1

    def test_restore_round_trips_stats(self, geometry):
        """Stats survive a snapshot/restore (they used to be dropped)."""
        source = Ftl(geometry)
        for lpn in range(geometry.exported_pages):
            source.write_page(lpn)
        target = Ftl(geometry)
        target.restore(source.snapshot())
        assert target.stats == source.stats
        # Measurement resets are explicit now, not a restore side effect.
        target.reset_measurement()
        assert target.stats.host_programs == 0

    def test_restore_tolerates_pre_fidelity_snapshots(self, geometry):
        """Snapshots without the new keys restore with default state."""
        source = Ftl(geometry)
        for lpn in range(geometry.exported_pages):
            source.write_page(lpn)
        snap = source.snapshot()
        for key in ("stats", "retired", "retired_blocks", "map_reads_pending",
                    "map_writes_pending", "map_cache"):
            snap.pop(key)
        target = Ftl(geometry)
        target.restore(snap)
        assert target.stats.host_programs == 0
        assert target.retired_blocks == 0
        target.check_invariants()


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=400))
    def test_arbitrary_write_sequences_keep_invariants(self, lpns):
        """Property: any in-range write sequence leaves the FTL consistent."""
        geometry = SsdGeometry(
            num_channels=2, blocks_per_channel=8, pages_per_block=16, overprovision=0.4
        )
        ftl = Ftl(geometry, gc_low_water=0, gc_high_water=1)
        for lpn in lpns:
            ftl.write_page(lpn % geometry.exported_pages)
        ftl.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=10_000)),
            min_size=1,
            max_size=300,
        )
    )
    def test_interleaved_write_trim_keeps_invariants(self, ops):
        """Property: interleaved writes and trims never corrupt the maps."""
        geometry = SsdGeometry(
            num_channels=2, blocks_per_channel=8, pages_per_block=16, overprovision=0.4
        )
        ftl = Ftl(geometry, gc_low_water=0, gc_high_water=1)
        live = set()
        for is_write, raw in ops:
            lpn = raw % geometry.exported_pages
            if is_write:
                ftl.write_page(lpn)
                live.add(lpn)
            else:
                ftl.trim_page(lpn)
                live.discard(lpn)
        ftl.check_invariants()
        for lpn in live:
            assert ftl.lookup(lpn) != -1
