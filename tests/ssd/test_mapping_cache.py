"""Unit tests for the DFTL translation-page cache."""

from __future__ import annotations

import pytest

from repro.ssd.mapping_cache import (
    DEFAULT_ENTRIES_PER_PAGE,
    MAP_HIT,
    MAP_MISS,
    MAP_MISS_EVICT,
    MAP_MISS_WRITEBACK,
    MappingCache,
)


def make_cache(capacity=2, entries=8, per_page=4):
    """Small cache: 8 entries over 2 translation pages of 4 each... by
    default 2 translation pages resident out of ceil(8/4)=2 -- pass a
    larger ``entries`` to make it contended."""
    return MappingCache(entries, capacity_pages=capacity, entries_per_page=per_page)


class TestConstruction:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            MappingCache(0)
        with pytest.raises(ValueError):
            MappingCache(8, entries_per_page=0)
        with pytest.raises(ValueError):
            MappingCache(8, capacity_pages=0)

    def test_default_is_fully_resident(self):
        cache = MappingCache(10_000)
        assert cache.resident_table
        assert cache.resident_pages == cache.total_pages == -(-10_000 // DEFAULT_ENTRIES_PER_PAGE)

    def test_oversized_capacity_is_resident(self):
        cache = MappingCache(16, capacity_pages=100, entries_per_page=4)
        assert cache.resident_table
        assert cache.resident_pages == 4

    def test_translation_page_mapping(self):
        cache = make_cache()
        assert cache.translation_page_of(0) == 0
        assert cache.translation_page_of(3) == 0
        assert cache.translation_page_of(4) == 1


class TestAccessOutcomes:
    def test_cold_miss_then_hit(self):
        cache = MappingCache(16, capacity_pages=2, entries_per_page=4)
        assert cache.access(0, dirty=False) == MAP_MISS
        assert cache.access(1, dirty=False) == MAP_HIT  # same translation page
        assert (cache.misses, cache.hits) == (1, 1)

    def test_clean_eviction(self):
        cache = MappingCache(16, capacity_pages=2, entries_per_page=4)
        cache.access(0, dirty=False)   # tpn 0
        cache.access(4, dirty=False)   # tpn 1
        assert cache.access(8, dirty=False) == MAP_MISS_EVICT  # evicts clean tpn 0
        assert cache.writebacks == 0
        assert cache.evictions == 1

    def test_dirty_eviction_costs_writeback(self):
        cache = MappingCache(16, capacity_pages=2, entries_per_page=4)
        cache.access(0, dirty=True)    # tpn 0 dirty
        cache.access(4, dirty=False)   # tpn 1
        assert cache.access(8, dirty=False) == MAP_MISS_WRITEBACK
        assert cache.writebacks == 1

    def test_lru_order_reinserts_on_hit(self):
        cache = MappingCache(16, capacity_pages=2, entries_per_page=4)
        cache.access(0, dirty=False)   # tpn 0
        cache.access(4, dirty=False)   # tpn 1
        cache.access(0, dirty=False)   # hit, tpn 0 becomes MRU
        cache.access(8, dirty=False)   # must evict tpn 1, not tpn 0
        assert cache.access(0, dirty=False) == MAP_HIT
        assert cache.access(4, dirty=False) != MAP_HIT

    def test_hit_preserves_dirt(self):
        cache = MappingCache(16, capacity_pages=2, entries_per_page=4)
        cache.access(0, dirty=True)
        cache.access(0, dirty=False)   # clean hit must not launder the dirt
        cache.access(4, dirty=False)
        assert cache.access(8, dirty=False) == MAP_MISS_WRITEBACK

    def test_resident_table_never_misses(self):
        cache = MappingCache(64, entries_per_page=4)  # fully resident
        for lpn in range(64):
            assert cache.access(lpn, dirty=True) == MAP_HIT
        assert cache.misses == 0
        assert cache.hit_rate == 1.0


class TestBookkeeping:
    def test_hit_rate_with_no_accesses(self):
        assert make_cache().hit_rate == 1.0

    def test_reset_counters_keeps_residency(self):
        cache = MappingCache(16, capacity_pages=2, entries_per_page=4)
        cache.access(0, dirty=True)
        cache.reset_counters()
        assert (cache.hits, cache.misses, cache.evictions, cache.writebacks) == (0, 0, 0, 0)
        assert cache.access(0, dirty=False) == MAP_HIT  # still resident

    def test_snapshot_round_trip(self):
        cache = MappingCache(32, capacity_pages=3, entries_per_page=4)
        for lpn in (0, 5, 9, 17, 2):
            cache.access(lpn, dirty=lpn % 2 == 0)
        snap = cache.snapshot()
        clone = MappingCache(32, capacity_pages=3, entries_per_page=4)
        clone.restore(snap)
        assert clone.snapshot() == snap
        # Same future behaviour, not just same counters.
        assert clone.access(21, dirty=False) == cache.access(21, dirty=False)
        assert clone.snapshot() == cache.snapshot()

    def test_invariants_catch_overflow(self):
        cache = MappingCache(16, capacity_pages=2, entries_per_page=4)
        cache.check_invariants()
        cache._resident = {0: False, 1: False, 2: False}
        with pytest.raises(AssertionError):
            cache.check_invariants()
