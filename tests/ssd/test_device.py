"""Tests for the SSD device timing model."""

from __future__ import annotations

import random

import pytest

from repro.sim import Simulator
from repro.ssd import (
    DCT983_PROFILE,
    DeviceCommand,
    IoOp,
    NullDevice,
    SsdDevice,
    SsdGeometry,
    precondition_clean,
    precondition_fragmented,
)


def run_closed_loop(sim, device, queue_depth, op, npages, duration_us, seed=0, sequential=False):
    """Drive a closed-loop worker; returns (bytes, ops, total_latency)."""
    rng = random.Random(seed)
    exported = device.exported_pages
    state = {"bytes": 0, "ops": 0, "latency": 0.0, "next": 0}

    def next_lpn():
        if sequential:
            lpn = state["next"]
            state["next"] = (state["next"] + npages) % (exported - npages)
            return lpn
        return rng.randrange(exported - npages)

    def on_complete(cmd):
        state["bytes"] += cmd.size_bytes
        state["ops"] += 1
        state["latency"] += cmd.latency_us
        if sim.now < duration_us:
            issue()

    def issue():
        device.submit(DeviceCommand(op, next_lpn(), npages), on_complete)

    for _ in range(queue_depth):
        issue()
    sim.run(until_us=duration_us)
    return state


@pytest.fixture
def device(sim):
    return SsdDevice(sim)


@pytest.fixture
def clean_device(sim):
    dev = SsdDevice(sim)
    precondition_clean(dev)
    return dev


class TestBasicIo:
    def test_read_completes_with_latency(self, sim, clean_device):
        done = []
        clean_device.submit(DeviceCommand(IoOp.READ, 0, 1), done.append)
        sim.run()
        assert len(done) == 1
        cmd = done[0]
        assert cmd.latency_us > 0
        assert cmd.complete_time == sim.now

    def test_write_completes(self, sim, device):
        done = []
        device.submit(DeviceCommand(IoOp.WRITE, 0, 1), done.append)
        sim.run()
        assert len(done) == 1

    def test_out_of_range_command_rejected(self, sim, device):
        with pytest.raises(ValueError):
            device.submit(
                DeviceCommand(IoOp.READ, device.exported_pages, 1), lambda cmd: None
            )

    def test_oversized_write_rejected(self, sim, device):
        huge = device.buffer.capacity + 1
        with pytest.raises(ValueError):
            device.submit(DeviceCommand(IoOp.WRITE, 0, huge), lambda cmd: None)

    def test_outstanding_tracks_inflight(self, sim, clean_device):
        clean_device.submit(DeviceCommand(IoOp.READ, 0, 1), lambda cmd: None)
        assert clean_device.outstanding == 1
        sim.run()
        assert clean_device.outstanding == 0

    def test_stats_count_commands_and_bytes(self, sim, clean_device):
        clean_device.submit(DeviceCommand(IoOp.READ, 0, 4), lambda cmd: None)
        clean_device.submit(DeviceCommand(IoOp.WRITE, 8, 2), lambda cmd: None)
        sim.run()
        assert clean_device.stats.read_commands == 1
        assert clean_device.stats.write_commands == 1
        assert clean_device.stats.read_bytes == 4 * 4096
        assert clean_device.stats.write_bytes == 2 * 4096


class TestLatencyShape:
    def test_unloaded_4k_read_latency_near_75us(self, sim, clean_device):
        state = run_closed_loop(sim, clean_device, 1, IoOp.READ, 1, 100_000.0)
        average = state["latency"] / state["ops"]
        assert 60.0 < average < 100.0

    def test_larger_reads_take_longer_unloaded(self, sim, clean_device):
        # Sizes below one stripe (8 channels x 4 KiB) complete fully in
        # parallel, so the ladder uses sizes that queue per channel.
        latency_by_size = {}
        for npages in (1, 32, 64):
            sim_local = Simulator()
            dev = SsdDevice(sim_local)
            precondition_clean(dev)
            state = run_closed_loop(sim_local, dev, 1, IoOp.READ, npages, 50_000.0)
            latency_by_size[npages] = state["latency"] / state["ops"]
        assert latency_by_size[1] < latency_by_size[32] < latency_by_size[64]

    def test_latency_rises_with_load(self):
        """The paper's impulse response: latency explodes past capacity."""
        averages = []
        for queue_depth in (1, 32, 256):
            sim = Simulator()
            dev = SsdDevice(sim)
            precondition_clean(dev)
            state = run_closed_loop(sim, dev, queue_depth, IoOp.READ, 1, 200_000.0)
            averages.append(state["latency"] / state["ops"])
        assert averages[0] < averages[1] < averages[2]
        assert averages[2] > 5 * averages[0]

    def test_buffered_write_latency_is_low(self, sim, clean_device):
        state = run_closed_loop(sim, clean_device, 1, IoOp.WRITE, 1, 50_000.0)
        average = state["latency"] / state["ops"]
        assert average < 60.0


class TestThroughputShape:
    def test_4k_random_read_capacity(self):
        sim = Simulator()
        dev = SsdDevice(sim)
        precondition_clean(dev)
        state = run_closed_loop(sim, dev, 128, IoOp.READ, 1, 500_000.0)
        iops = state["ops"] / 0.5
        assert 350_000 < iops < 480_000

    def test_128k_read_bandwidth_exceeds_4k(self):
        bandwidth = {}
        for npages in (1, 32):
            sim = Simulator()
            dev = SsdDevice(sim)
            precondition_clean(dev)
            state = run_closed_loop(sim, dev, 16, IoOp.READ, npages, 500_000.0)
            bandwidth[npages] = state["bytes"] / 0.5 / 1e6
        assert bandwidth[32] > 1.5 * bandwidth[1]

    def test_clean_sequential_write_bandwidth(self):
        sim = Simulator()
        dev = SsdDevice(sim)
        precondition_clean(dev)
        state = run_closed_loop(
            sim, dev, 4, IoOp.WRITE, 32, 1_000_000.0, sequential=True
        )
        mbps = state["bytes"] / 1_000_000.0 / (1024 * 1024 / 1e6)
        assert 900 < mbps < 1500
        assert dev.write_amplification < 1.2

    def test_fragmented_random_write_is_slow(self):
        sim = Simulator()
        dev = SsdDevice(sim)
        precondition_fragmented(dev)
        state = run_closed_loop(sim, dev, 32, IoOp.WRITE, 1, 1_000_000.0)
        mbps = state["bytes"] / 1_000_000.0 / (1024 * 1024 / 1e6)
        assert 80 < mbps < 320
        assert dev.write_amplification > 3.0

    def test_write_neighbour_degrades_reads(self):
        """Read/write interference: co-running writes steal read bandwidth."""

        def read_iops(with_writes):
            sim = Simulator()
            dev = SsdDevice(sim)
            precondition_fragmented(dev)
            reads = run_closed_loop(sim, dev, 32, IoOp.READ, 1, 300_000.0, seed=1)
            if not with_writes:
                return reads["ops"]
            sim2 = Simulator()
            dev2 = SsdDevice(sim2)
            precondition_fragmented(dev2)
            state = {"reads": 0}
            rng = random.Random(1)

            def on_read(cmd):
                state["reads"] += 1
                if sim2.now < 300_000.0:
                    dev2.submit(
                        DeviceCommand(IoOp.READ, rng.randrange(dev2.exported_pages - 1), 1),
                        on_read,
                    )

            def on_write(cmd):
                if sim2.now < 300_000.0:
                    dev2.submit(
                        DeviceCommand(IoOp.WRITE, rng.randrange(dev2.exported_pages - 1), 1),
                        on_write,
                    )

            for _ in range(32):
                dev2.submit(
                    DeviceCommand(IoOp.READ, rng.randrange(dev2.exported_pages - 1), 1), on_read
                )
            for _ in range(32):
                dev2.submit(
                    DeviceCommand(IoOp.WRITE, rng.randrange(dev2.exported_pages - 1), 1), on_write
                )
            sim2.run(until_us=300_000.0)
            return state["reads"]

        alone = read_iops(with_writes=False)
        mixed = read_iops(with_writes=True)
        assert mixed < 0.7 * alone


class TestWriteBufferBehaviour:
    def test_burst_absorbed_by_buffer(self, sim, clean_device):
        """A burst smaller than the buffer completes at DRAM latency."""
        burst_pages = clean_device.buffer.capacity // 2
        done = []
        for i in range(burst_pages // 8):
            clean_device.submit(DeviceCommand(IoOp.WRITE, i * 8, 8), done.append)
        sim.run()
        latencies = [cmd.latency_us for cmd in done]
        assert max(latencies) < 200.0

    def test_sustained_overload_backs_up(self, sim, clean_device):
        """Once the buffer is full, write latency reflects the drain rate."""
        capacity = clean_device.buffer.capacity
        done = []
        total = capacity * 3
        for i in range(total // 8):
            clean_device.submit(DeviceCommand(IoOp.WRITE, (i * 8) % 4096, 8), done.append)
        sim.run()
        latencies = sorted(cmd.latency_us for cmd in done)
        assert latencies[-1] > 10 * latencies[0]

    def test_read_of_buffered_page_is_fast(self, sim, clean_device):
        clean_device.submit(DeviceCommand(IoOp.WRITE, 100, 1), lambda cmd: None)
        hits_before = clean_device.stats.buffer_read_hits
        done = []
        clean_device.submit(DeviceCommand(IoOp.READ, 100, 1), done.append)
        sim.run()
        assert clean_device.stats.buffer_read_hits == hits_before + 1
        assert done[0].latency_us < 30.0

    def test_reset_time_state_rejected_with_inflight(self, sim, clean_device):
        clean_device.submit(DeviceCommand(IoOp.READ, 0, 1), lambda cmd: None)
        with pytest.raises(RuntimeError):
            clean_device.reset_time_state()

    def test_reset_time_state_cancels_pending_drains(self, sim, clean_device):
        """Regression: buffer-drain events scheduled before a reset must
        not fire after it.

        Writes complete host-side at admission, so the device can be
        idle (``outstanding == 0``) while drain events are still queued
        for the flash programs.  reset_time_state clears the drain
        schedule and the buffer; a stale drain firing afterwards would
        pop a missing schedule entry and release pages that no longer
        exist.
        """
        done = []
        for i in range(8):
            clean_device.submit(DeviceCommand(IoOp.WRITE, i * 8, 8), done.append)
        # Run just far enough for the host-side completions (DRAM
        # latency) but not the channel drains (flash program time).
        sim.run(until_us=100.0)
        assert len(done) == 8
        assert clean_device.outstanding == 0
        assert clean_device._drain_events, "writes should leave drains queued"

        fired = []
        original = clean_device._on_channel_drain
        clean_device._on_channel_drain = lambda key: (fired.append(key), original(key))

        clean_device.reset_time_state()
        assert not clean_device._drain_events
        assert clean_device.buffer.occupied == 0

        sim.run()  # drain the heap: cancelled events must be dead
        assert fired == [], "stale drain fired after reset_time_state"

        # The device still works normally after the reset.
        clean_device._on_channel_drain = original
        post = []
        clean_device.submit(DeviceCommand(IoOp.WRITE, 0, 8), post.append)
        sim.run()
        assert len(post) == 1
        assert clean_device.buffer.occupied == 0  # drained normally


class TestConditioning:
    def test_clean_preconditioning_maps_everything(self, sim):
        dev = SsdDevice(sim)
        precondition_clean(dev)
        assert dev.ftl.mapped_pages == dev.geometry.exported_pages

    def test_conditioning_resets_counters(self, sim):
        dev = SsdDevice(sim)
        precondition_fragmented(dev)
        assert dev.ftl.stats.host_programs == 0
        assert dev.stats.commands == 0
        assert dev.write_amplification == 1.0

    def test_cached_conditioning_matches_fresh(self, small_geometry):
        from repro.ssd.conditioning import clear_conditioning_cache

        clear_conditioning_cache()
        dev1 = SsdDevice(Simulator(), geometry=small_geometry)
        precondition_fragmented(dev1)
        dev2 = SsdDevice(Simulator(), geometry=small_geometry)
        precondition_fragmented(dev2)  # cache hit
        assert dev1.ftl.page_map == dev2.ftl.page_map

    def test_invalid_overwrite_factor_rejected(self, sim):
        dev = SsdDevice(sim)
        with pytest.raises(ValueError):
            precondition_fragmented(dev, overwrite_factor=-1.0)


class TestNullDevice:
    def test_completes_immediately(self, sim):
        dev = NullDevice(sim)
        done = []
        dev.submit(DeviceCommand(IoOp.READ, 0, 1), done.append)
        sim.run()
        assert done[0].latency_us == 0.0

    def test_counts_stats(self, sim):
        dev = NullDevice(sim)
        dev.submit(DeviceCommand(IoOp.WRITE, 0, 2), lambda cmd: None)
        sim.run()
        assert dev.stats.write_commands == 1
        assert dev.write_amplification == 1.0


class TestCommandValidation:
    def test_negative_lpn_rejected(self):
        with pytest.raises(ValueError):
            DeviceCommand(IoOp.READ, -1, 1)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            DeviceCommand(IoOp.READ, 0, 0)

    def test_size_bytes(self):
        assert DeviceCommand(IoOp.READ, 0, 32).size_bytes == 128 * 1024

    def test_latency_before_completion_rejected(self):
        with pytest.raises(ValueError):
            _ = DeviceCommand(IoOp.READ, 0, 1).latency_us

    def test_op_predicates(self):
        assert IoOp.READ.is_read and not IoOp.READ.is_write
        assert IoOp.WRITE.is_write and not IoOp.WRITE.is_read
