"""Conditioning-cache keying: distinct targets must never share state.

The conditioning snapshot cache turns "multiple hours" of
preconditioning into a dict lookup, which makes its *key* a
correctness surface: if two different conditioning targets collide,
one experiment silently runs on another experiment's device.  These
tests pin the key down across every axis -- kind, parameters, seed,
geometry, and the FTL fidelity knobs introduced with the DFTL cache
and wear dynamics.
"""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.ssd import (
    SsdDevice,
    SsdGeometry,
    age_device,
    clear_conditioning_cache,
    precondition_clean,
    precondition_fragmented,
    profile_by_name,
)
from repro.ssd.conditioning import _snapshot_cache

GEOMETRY = SsdGeometry(
    num_channels=2, blocks_per_channel=14, pages_per_block=32, overprovision=0.4
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_conditioning_cache()
    yield
    clear_conditioning_cache()


def make_device(geometry=GEOMETRY, **overrides):
    profile = profile_by_name("dct983")
    if overrides:
        profile = profile.with_overrides(**overrides)
    return SsdDevice(Simulator(), profile=profile, geometry=geometry)


class TestKeySeparation:
    def test_kinds_never_collide(self):
        precondition_clean(make_device())
        precondition_fragmented(make_device())
        age_device(make_device(), age=0.5)
        assert len(_snapshot_cache) == 3

    def test_aged_params_are_distinct_entries(self):
        age_device(make_device(), age=0.2)
        age_device(make_device(), age=0.8)
        age_device(make_device(), age=0.8, wear_skew=0.5)
        age_device(make_device(), age=0.8, seed=2)
        age_device(make_device(), age=0.8, overwrite_factor=1.0)
        assert len(_snapshot_cache) == 5

    def test_fragmented_seed_and_factor_are_distinct(self):
        precondition_fragmented(make_device(), seed=1)
        precondition_fragmented(make_device(), seed=2)
        precondition_fragmented(make_device(), overwrite_factor=1.0)
        assert len(_snapshot_cache) == 3

    def test_geometry_is_part_of_the_key(self):
        other = SsdGeometry(
            num_channels=2, blocks_per_channel=16, pages_per_block=32, overprovision=0.4
        )
        precondition_fragmented(make_device())
        precondition_fragmented(make_device(geometry=other))
        assert len(_snapshot_cache) == 2

    def test_fidelity_knobs_are_part_of_the_key(self):
        """A DFTL device and a reference device condition differently
        (cache residency, wear state) -- they must not share snapshots."""
        precondition_fragmented(make_device())
        precondition_fragmented(make_device(map_cache_pages=2))
        precondition_fragmented(make_device(map_cache_pages=4))
        precondition_fragmented(make_device(endurance_cycles=50))
        precondition_fragmented(
            make_device(endurance_cycles=50, static_wear_threshold=10)
        )
        assert len(_snapshot_cache) == 5

    def test_two_aged_devices_same_params_share_one_entry(self):
        first = make_device()
        age_device(first, age=0.5)
        second = make_device()
        age_device(second, age=0.5)
        assert len(_snapshot_cache) == 1
        assert second.ftl.page_map == first.ftl.page_map
        assert second.ftl._erase_counts == first.ftl._erase_counts


class TestRestoredStateIsIsolated:
    def test_restore_does_not_alias_cached_snapshot(self):
        """Mutating a restored device must not corrupt the cache entry
        the next device will restore from."""
        first = make_device()
        age_device(first, age=0.5)
        for lpn in range(64):
            first.ftl.write_page(lpn)
        second = make_device()
        age_device(second, age=0.5)
        assert second.ftl.page_map != first.ftl.page_map or first.ftl.stats != second.ftl.stats
        second.ftl.check_invariants()

    def test_warm_restore_matches_cold_conditioning(self):
        cold = make_device(map_cache_pages=2)
        age_device(cold, age=0.6)
        warm = make_device(map_cache_pages=2)
        age_device(warm, age=0.6)
        assert warm.ftl.page_map == cold.ftl.page_map
        assert warm.ftl._erase_counts == cold.ftl._erase_counts
        assert warm.ftl.map_cache.snapshot() == cold.ftl.map_cache.snapshot()

    def test_settle_resets_measurement_not_layout(self):
        device = make_device(map_cache_pages=2, endurance_cycles=3000)
        age_device(device, age=0.7)
        ftl = device.ftl
        assert ftl.stats.host_programs == 0  # conditioning traffic scrubbed
        assert ftl.map_cache.misses == 0
        assert ftl.mapped_pages > 0          # ...but the layout survived
        assert ftl.wear_stats().mean_erases > 0
        assert ftl.take_map_traffic() == (0, 0)
