"""Tests for wear levelling in the FTL."""

from __future__ import annotations

import random

from repro.ssd import Ftl, SsdGeometry
from repro.ssd.ftl import WearStats


def churn(ftl, geometry, passes=6, seed=0):
    rng = random.Random(seed)
    for lpn in range(geometry.exported_pages):
        ftl.write_page(lpn)
    for _ in range(geometry.exported_pages * passes):
        ftl.write_page(rng.randrange(geometry.exported_pages))


class TestWearLevelling:
    def test_erase_counts_accumulate(self):
        geometry = SsdGeometry(num_channels=2, blocks_per_channel=10, pages_per_block=32,
                               overprovision=0.4)
        ftl = Ftl(geometry)
        churn(ftl, geometry, passes=3)
        stats = ftl.wear_stats()
        assert stats.mean_erases > 0
        assert stats.max_erases >= stats.min_erases

    def test_wear_spread_stays_bounded_under_uniform_churn(self):
        """Least-worn-first free-block selection keeps the erase-count
        gap small relative to the mean."""
        geometry = SsdGeometry(num_channels=2, blocks_per_channel=12, pages_per_block=32,
                               overprovision=0.35)
        ftl = Ftl(geometry)
        churn(ftl, geometry, passes=10)
        stats = ftl.wear_stats()
        assert stats.mean_erases > 3
        # Hot GC blocks inevitably cycle more, but the spread must not
        # dwarf the mean (no block left permanently cold).
        assert stats.spread <= max(6.0, 2.0 * stats.mean_erases)

    def test_wear_survives_snapshot_restore(self):
        geometry = SsdGeometry(num_channels=2, blocks_per_channel=10, pages_per_block=32,
                               overprovision=0.4)
        source = Ftl(geometry)
        churn(source, geometry, passes=3)
        target = Ftl(geometry)
        target.restore(source.snapshot())
        assert target.wear_stats() == source.wear_stats()

    def test_wear_stats_shape(self):
        stats = WearStats(min_erases=1, max_erases=5, mean_erases=2.5)
        assert stats.spread == 4
