"""Tests for the wear-dynamics layer: endurance retirement, static
wear levelling, and fast-forwarded aging."""

from __future__ import annotations

import random

import pytest

from repro.ssd import Ftl, SsdGeometry
from repro.ssd.ftl import FtlError, WearConfig

#: Enough spare blocks above the viability floor for retirement to
#: actually happen (see the budget maths in Ftl._retirable_free_count).
ROOMY = SsdGeometry(
    num_channels=2, blocks_per_channel=16, pages_per_block=32, overprovision=0.4
)
#: No headroom: the viability floor equals the channel size.
TIGHT = SsdGeometry(
    num_channels=2, blocks_per_channel=12, pages_per_block=32, overprovision=0.35
)


def churn(ftl, geometry, passes=4, seed=0):
    rng = random.Random(seed)
    for lpn in range(geometry.exported_pages):
        ftl.write_page(lpn)
    for _ in range(geometry.exported_pages * passes):
        ftl.write_page(rng.randrange(geometry.exported_pages))


class TestWearConfig:
    def test_rejects_non_positive_knobs(self):
        with pytest.raises(ValueError):
            WearConfig(endurance_cycles=0)
        with pytest.raises(ValueError):
            WearConfig(static_wear_threshold=-1)

    def test_default_is_reference_behaviour(self):
        config = WearConfig()
        assert config.endurance_cycles is None
        assert config.static_wear_threshold is None


class TestRetirement:
    def test_worn_blocks_retire_under_churn(self):
        ftl = Ftl(ROOMY, wear=WearConfig(endurance_cycles=5))
        churn(ftl, ROOMY, passes=8)
        ftl.check_invariants()
        assert ftl.retired_blocks > 0
        stats = ftl.wear_stats()
        assert stats.retired_blocks == ftl.retired_blocks
        # In-service distribution excludes the dead blocks, so the max
        # can legitimately sit at/above the limit only for blocks the
        # viability floor kept in rotation.
        assert stats.total_erases > 0

    def test_viability_floor_blocks_retirement(self):
        """With no spare blocks above the floor, endurance death must
        not shrink the pool below what GC needs: the device keeps
        running on over-endurance blocks instead of deadlocking."""
        ftl = Ftl(TIGHT, wear=WearConfig(endurance_cycles=3))
        churn(ftl, TIGHT, passes=10)
        ftl.check_invariants()
        assert ftl.retired_blocks == 0
        assert ftl.wear_stats().max_erases >= 3  # wear really did exceed the limit

    def test_retirement_keeps_gc_runway(self):
        """Sustained churn far past the endurance limit must never
        exhaust a channel: the free pool floor in the retirement pass
        guarantees GC forward progress."""
        ftl = Ftl(ROOMY, wear=WearConfig(endurance_cycles=4))
        try:
            churn(ftl, ROOMY, passes=20, seed=3)
        except FtlError as error:  # pragma: no cover - the bug under test
            pytest.fail(f"GC starved by retirement: {error}")
        ftl.check_invariants()
        assert ftl.retired_blocks > 0
        for channel in range(ROOMY.num_channels):
            assert ftl.free_blocks_on_channel(channel) >= 1

    def test_retired_blocks_never_reused(self):
        ftl = Ftl(ROOMY, wear=WearConfig(endurance_cycles=5))
        churn(ftl, ROOMY, passes=8)
        retired = [b for b, flag in enumerate(ftl._retired) if flag]
        assert retired
        frozen = {b: ftl._erase_counts[b] for b in retired}
        churn(ftl, ROOMY, passes=4, seed=9)
        for block_id, count in frozen.items():
            assert ftl._erase_counts[block_id] == count, "retired block erased again"


class TestStaticWearLevelling:
    def test_cold_block_migrates_when_spread_exceeds_threshold(self):
        ftl = Ftl(ROOMY, wear=WearConfig(static_wear_threshold=4))
        # Park cold data: write the whole space once (cold blocks form),
        # then hammer a small hot region so the spread grows.
        for lpn in range(ROOMY.exported_pages):
            ftl.write_page(lpn)
        rng = random.Random(1)
        hot = ROOMY.exported_pages // 8
        for _ in range(ROOMY.exported_pages * 12):
            ftl.write_page(rng.randrange(hot))
        ftl.check_invariants()
        assert ftl.stats.wl_migrations > 0
        assert ftl.stats.wl_programs > 0

    def test_wl_work_counts_toward_write_amplification(self):
        ftl = Ftl(ROOMY, wear=WearConfig(static_wear_threshold=4))
        for lpn in range(ROOMY.exported_pages):
            ftl.write_page(lpn)
        rng = random.Random(1)
        hot = ROOMY.exported_pages // 8
        for _ in range(ROOMY.exported_pages * 12):
            ftl.write_page(rng.randrange(hot))
        stats = ftl.stats
        expected = (stats.host_programs + stats.gc_programs + stats.wl_programs) / stats.host_programs
        assert stats.write_amplification == pytest.approx(expected)

    def test_no_migration_without_threshold(self):
        ftl = Ftl(ROOMY)  # wear=None: reference behaviour
        churn(ftl, ROOMY, passes=8)
        assert ftl.stats.wl_migrations == 0
        assert ftl.stats.wl_programs == 0


class TestAgedSnapshotContinuation:
    def test_restore_continues_byte_identically(self):
        """An aged snapshot is not just equal at rest: the restored
        FTL must make the exact same decisions (GC victims, wear-level
        migrations, retirements, map traffic) under a continued
        workload."""
        from repro.ssd.mapping_cache import MappingCache

        def build():
            return Ftl(
                ROOMY,
                mapping_cache=MappingCache(
                    ROOMY.exported_pages, capacity_pages=2, entries_per_page=64
                ),
                wear=WearConfig(endurance_cycles=8, static_wear_threshold=4),
            )

        original = build()
        churn(original, ROOMY, passes=5, seed=7)
        original.advance_wear([2] * ROOMY.total_blocks)
        clone = build()
        clone.restore(original.snapshot())

        rng = random.Random(11)
        ops = [rng.randrange(ROOMY.exported_pages) for _ in range(ROOMY.exported_pages * 3)]
        for ftl in (original, clone):
            for lpn in ops:
                ftl.write_page(lpn)
                ftl.lookup(lpn)
        assert clone.page_map == original.page_map
        assert clone.stats == original.stats
        assert clone._erase_counts == original._erase_counts
        assert clone.retired_blocks == original.retired_blocks
        assert clone.take_map_traffic() == original.take_map_traffic()
        assert clone.map_cache.snapshot() == original.map_cache.snapshot()
        clone.check_invariants()


class TestAdvanceWear:
    def test_adds_cycles(self):
        ftl = Ftl(ROOMY)
        ftl.advance_wear([3] * ROOMY.total_blocks)
        stats = ftl.wear_stats()
        assert stats.min_erases == stats.max_erases == 3
        assert stats.total_erases == 3 * ROOMY.total_blocks

    def test_validates_input(self):
        ftl = Ftl(ROOMY)
        with pytest.raises(ValueError):
            ftl.advance_wear([1])
        with pytest.raises(ValueError):
            ftl.advance_wear([-1] * ROOMY.total_blocks)

    def test_clamps_one_short_of_endurance(self):
        """An aged device must boot alive: fast-forwarded wear stops
        one cycle short of the limit so retirement happens during the
        run, not at time zero."""
        ftl = Ftl(ROOMY, wear=WearConfig(endurance_cycles=10))
        ftl.advance_wear([50] * ROOMY.total_blocks)
        assert ftl.wear_stats().max_erases == 9
        assert ftl.retired_blocks == 0

    def test_aged_device_still_writable(self):
        ftl = Ftl(ROOMY, wear=WearConfig(endurance_cycles=10))
        ftl.advance_wear([50] * ROOMY.total_blocks)
        churn(ftl, ROOMY, passes=3)
        ftl.check_invariants()
        assert ftl.retired_blocks > 0  # limit crossed during the run
