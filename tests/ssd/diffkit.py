"""Differential-testing kit for the SSD model.

One randomized open-loop workload, generated once from a seed, is
replayed through differently configured devices (reference idealized
FTL vs DFTL-with-infinite-cache, wear dynamics on vs off, ...) and the
device-visible behaviour is captured exactly: every command's
completion time, the host-facing counters, the FTL's program/erase
accounting, and the final logical-to-physical state.

``replay`` is deliberately untolerant -- results compare with ``==``
so any divergence, down to the last microsecond of a completion time,
fails the differential tests.  This is what lets the fidelity layers
(mapping cache, wear levelling) claim to be *strictly additive*: with
an infinite cache and wear dynamics disabled they must reproduce the
reference byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.ssd import (
    DeviceCommand,
    IoOp,
    SsdDevice,
    SsdGeometry,
    precondition_clean,
    precondition_fragmented,
    profile_by_name,
)
from repro.sim import make_simulator

#: Default geometry for differential runs: small enough to churn
#: through GC in a few hundred operations, enough overprovisioning for
#: the watermarks.
DIFF_GEOMETRY = SsdGeometry(
    num_channels=4, blocks_per_channel=12, pages_per_block=64, overprovision=0.35
)


@dataclass(frozen=True)
class ReplayOp:
    """One scheduled command of a replayable workload."""

    index: int
    op: IoOp
    lpn: int
    npages: int
    submit_us: float


@dataclass(frozen=True)
class ReplayResult:
    """Everything device-visible about one replay, exactly comparable."""

    #: Per-command ``(index, op name, lpn, npages, submit_us, complete_us)``.
    completions: Tuple[Tuple[int, str, int, int, float, float], ...]
    device_stats: object
    ftl_stats: object
    wear: object
    page_map: Tuple[int, ...]
    erase_counts: Tuple[int, ...]
    final_time_us: float

    def diff(self, other: "ReplayResult") -> List[str]:
        """Human-readable list of fields that differ (empty == identical)."""
        lines: List[str] = []
        for field in (
            "device_stats",
            "ftl_stats",
            "wear",
            "page_map",
            "erase_counts",
            "final_time_us",
        ):
            if getattr(self, field) != getattr(other, field):
                lines.append(f"{field}: {getattr(self, field)!r} != {getattr(other, field)!r}")
        if self.completions != other.completions:
            for mine, theirs in zip(self.completions, other.completions):
                if mine != theirs:
                    lines.append(f"completion {mine!r} != {theirs!r}")
                    break
            if len(self.completions) != len(other.completions):
                lines.append(
                    f"completion count {len(self.completions)} != {len(other.completions)}"
                )
        return lines


def generate_workload(
    geometry: SsdGeometry = DIFF_GEOMETRY,
    *,
    ops: int = 400,
    seed: int = 0,
    read_fraction: float = 0.45,
    trim_fraction: float = 0.05,
    max_pages: int = 4,
    mean_gap_us: float = 25.0,
    hot_fraction: float = 0.2,
    hot_weight: float = 0.6,
) -> List[ReplayOp]:
    """Randomized open-loop schedule over the exported LBA space.

    A hot region (``hot_fraction`` of the space drawing ``hot_weight``
    of the accesses) gives GC a skewed invalidation pattern, the part
    of the state space where FTL bugs actually live.
    """
    rng = random.Random(seed)
    exported = geometry.exported_pages
    hot_pages = max(max_pages, int(exported * hot_fraction))
    schedule: List[ReplayOp] = []
    clock = 0.0
    for index in range(ops):
        clock += rng.expovariate(1.0 / mean_gap_us)
        npages = rng.randint(1, max_pages)
        if rng.random() < hot_weight:
            lpn = rng.randrange(hot_pages - npages + 1)
        else:
            lpn = rng.randrange(exported - npages)
        roll = rng.random()
        if roll < trim_fraction:
            op = IoOp.TRIM
        elif roll < trim_fraction + read_fraction:
            op = IoOp.READ
        else:
            op = IoOp.WRITE
        schedule.append(ReplayOp(index, op, lpn, npages, clock))
    return schedule


def replay(
    schedule: List[ReplayOp],
    *,
    geometry: SsdGeometry = DIFF_GEOMETRY,
    profile_name: str = "dct983",
    profile_overrides: Optional[dict] = None,
    condition: str = "fragmented",
) -> ReplayResult:
    """Run one schedule through a freshly built device, capture everything."""
    sim = make_simulator()
    profile = profile_by_name(profile_name)
    if profile_overrides:
        profile = profile.with_overrides(**profile_overrides)
    device = SsdDevice(sim, profile=profile, geometry=geometry)
    if condition == "clean":
        precondition_clean(device)
    elif condition == "fragmented":
        precondition_fragmented(device)
    elif condition != "none":
        raise ValueError(f"unknown condition {condition!r}")

    completions: List[Tuple[int, str, int, int, float, float]] = []

    def submit(item: ReplayOp) -> None:
        def done(cmd: DeviceCommand, item: ReplayOp = item) -> None:
            completions.append(
                (item.index, item.op.value, item.lpn, item.npages, item.submit_us, sim.now)
            )

        device.submit(DeviceCommand(item.op, item.lpn, item.npages), done)

    for item in schedule:
        sim.at_(item.submit_us, submit, item)
    sim.run()

    ftl = device.ftl
    completions.sort()
    return ReplayResult(
        completions=tuple(completions),
        device_stats=replace(device.stats),
        ftl_stats=replace(ftl.stats),
        wear=ftl.wear_stats(),
        page_map=tuple(ftl.page_map),
        erase_counts=tuple(ftl._erase_counts),
        final_time_us=sim.now,
    )
