"""Differential tests: fidelity layers must be strictly additive.

The reference device (idealized page-mapped FTL, no wear dynamics) is
the behaviour every paper figure was validated against.  The DFTL
mapping cache and the wear machinery are *fidelity layers* on top of
it; their contract is that with the layer neutralized -- an infinite
cache, no endurance limit, no static wear-levelling trigger -- the
device is byte-identical to the reference: same completion times,
same counters, same final mapping, same erase counts.

Any regression in that contract silently shifts every figure, so the
comparison here is ``==``, not a tolerance.
"""

from __future__ import annotations

import pytest

from tests.ssd.diffkit import DIFF_GEOMETRY, generate_workload, replay

#: A cache big enough to hold every translation page of any geometry
#: used in these tests -- "infinite" in DFTL terms.
INFINITE_CACHE = 1 << 20

SEEDS = (0, 7, 1234)


def _assert_identical(reference, candidate):
    differences = reference.diff(candidate)
    assert not differences, "\n".join(differences)


class TestDftlInfiniteCacheIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fragmented_device(self, seed):
        schedule = generate_workload(seed=seed)
        reference = replay(schedule)
        candidate = replay(schedule, profile_overrides={"map_cache_pages": INFINITE_CACHE})
        _assert_identical(reference, candidate)

    def test_clean_device(self):
        schedule = generate_workload(seed=3, ops=250)
        reference = replay(schedule, condition="clean")
        candidate = replay(
            schedule,
            condition="clean",
            profile_overrides={"map_cache_pages": INFINITE_CACHE},
        )
        _assert_identical(reference, candidate)

    def test_write_heavy_gc_pressure(self):
        """GC-dominated run: relocations drive map accesses on the
        DFTL side; with the cache infinite they must all hit."""
        schedule = generate_workload(seed=11, ops=600, read_fraction=0.1, trim_fraction=0.1)
        reference = replay(schedule)
        candidate = replay(schedule, profile_overrides={"map_cache_pages": INFINITE_CACHE})
        _assert_identical(reference, candidate)

    def test_infinite_cache_records_hits_without_traffic(self):
        from repro.sim import Simulator
        from repro.ssd import DeviceCommand, IoOp, SsdDevice, profile_by_name

        sim = Simulator()
        profile = profile_by_name("dct983").with_overrides(map_cache_pages=INFINITE_CACHE)
        device = SsdDevice(sim, profile=profile, geometry=DIFF_GEOMETRY)
        device.submit(DeviceCommand(IoOp.WRITE, 0, 1), lambda cmd: None)
        device.submit(DeviceCommand(IoOp.READ, 0, 1), lambda cmd: None)
        sim.run()
        cache = device.ftl.map_cache
        assert cache.hits > 0
        assert cache.misses == 0
        assert cache.writebacks == 0
        assert device.ftl.take_map_traffic() == (0, 0)


class TestWearMachineryOffIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_wear_disabled_matches_reference(self, seed):
        """A WearConfig with both knobs off is wiring, not behaviour."""
        schedule = generate_workload(seed=seed)
        reference = replay(schedule)
        candidate = replay(
            schedule,
            profile_overrides={
                "endurance_cycles": 1_000_000_000,
                "static_wear_threshold": 1_000_000_000,
            },
        )
        _assert_identical(reference, candidate)

    def test_all_fidelity_layers_neutralized(self):
        """Cache infinite + wear limits unreachable == reference."""
        schedule = generate_workload(seed=5, ops=500)
        reference = replay(schedule)
        candidate = replay(
            schedule,
            profile_overrides={
                "map_cache_pages": INFINITE_CACHE,
                "endurance_cycles": 1_000_000_000,
                "static_wear_threshold": 1_000_000_000,
            },
        )
        _assert_identical(reference, candidate)


class TestFidelityLayersChangeBehaviour:
    """Sanity inversions: a *small* cache must diverge (else the
    differential tests above prove nothing)."""

    def test_tiny_cache_diverges_and_slows(self):
        schedule = generate_workload(seed=2, ops=400)
        reference = replay(schedule)
        candidate = replay(schedule, profile_overrides={"map_cache_pages": 1})
        assert candidate.diff(reference), "1-page cache produced zero divergence"
        # Misses serialize translation reads ahead of data reads: the
        # run as a whole must not finish earlier than the reference.
        assert candidate.final_time_us >= reference.final_time_us

    def test_tight_endurance_retires_blocks(self):
        from repro.ssd import SsdGeometry

        # DIFF_GEOMETRY has no spare blocks above the viability floor;
        # retirement needs real headroom to be observable.
        geometry = SsdGeometry(
            num_channels=4, blocks_per_channel=16, pages_per_block=64, overprovision=0.4
        )
        schedule = generate_workload(geometry, seed=2, ops=600, read_fraction=0.1)
        candidate = replay(
            schedule,
            geometry=geometry,
            profile_overrides={"endurance_cycles": 3, "static_wear_threshold": 1_000_000},
        )
        assert candidate.wear.retired_blocks > 0
