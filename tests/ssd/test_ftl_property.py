"""Property-based tests for the FTL, across fidelity configurations.

Hypothesis drives randomized op sequences (write / trim / lookup)
against a small FTL and checks the structural invariants a
page-mapped FTL must keep under any interleaving:

* **page conservation** -- the set of mapped LPNs equals exactly the
  LPNs written and not since trimmed, regardless of how much GC has
  shuffled the physical side;
* **mapping bijection** -- no two live LPNs share a physical page;
* **free-block accounting** -- every block is in exactly one pool
  (free / closed / open) or retired, never duplicated, never leaked;
* **monotone erase counts** -- erases only accumulate.

Every configuration runs the same properties: the reference FTL, a
DFTL mapping cache (infinite and thrashing-small), and wear dynamics
with tight endurance plus static wear levelling.  ``derandomize``
keeps the suite deterministic in CI.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ssd import Ftl, SsdGeometry
from repro.ssd.ftl import WearConfig
from repro.ssd.mapping_cache import MappingCache

GEOMETRY = SsdGeometry(
    num_channels=2, blocks_per_channel=12, pages_per_block=16, overprovision=0.4
)
EXPORTED = GEOMETRY.exported_pages

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _reference():
    return Ftl(GEOMETRY)


def _dftl_infinite():
    return Ftl(GEOMETRY, mapping_cache=MappingCache(EXPORTED, capacity_pages=1 << 20))


def _dftl_tiny():
    return Ftl(
        GEOMETRY,
        mapping_cache=MappingCache(EXPORTED, capacity_pages=1, entries_per_page=16),
    )


def _worn():
    return Ftl(GEOMETRY, wear=WearConfig(endurance_cycles=6, static_wear_threshold=3))


CONFIGS = {
    "reference": _reference,
    "dftl-infinite": _dftl_infinite,
    "dftl-tiny": _dftl_tiny,
    "worn": _worn,
}

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "trim", "lookup"]),
        st.integers(min_value=0, max_value=EXPORTED - 1),
    ),
    min_size=1,
    max_size=300,
)


def _run_ops(ftl: Ftl, ops) -> dict:
    """Apply the op sequence, maintaining the oracle model and checking
    invariants after every step."""
    model = set()
    last_total_erases = 0
    for op, lpn in ops:
        if op == "write":
            ppn, _work = ftl.write_page(lpn)
            assert ppn >= 0
            model.add(lpn)
        elif op == "trim":
            ftl.trim_page(lpn)
            model.discard(lpn)
        else:
            ppn = ftl.lookup(lpn)
            assert (ppn != -1) == (lpn in model)
        ftl.check_invariants()
        total = ftl.wear_stats().total_erases
        assert total >= last_total_erases, "erase counts went backwards"
        last_total_erases = total
        ftl.take_map_traffic()  # the device would drain this each interaction
    return {"model": model}


@pytest.mark.parametrize("config", sorted(CONFIGS))
class TestFtlProperties:
    @given(ops=ops_strategy)
    @SETTINGS
    def test_conservation_and_invariants(self, config, ops):
        ftl = CONFIGS[config]()
        state = _run_ops(ftl, ops)
        model = state["model"]
        # Page conservation: mapped set == written-minus-trimmed set.
        assert ftl.mapped_pages == len(model)
        for lpn in range(EXPORTED):
            assert (ftl.lookup(lpn) != -1) == (lpn in model)

    @given(ops=ops_strategy)
    @SETTINGS
    def test_mapping_is_injective(self, config, ops):
        ftl = CONFIGS[config]()
        _run_ops(ftl, ops)
        live = [ppn for ppn in ftl.page_map if ppn != -1]
        assert len(live) == len(set(live)), "two LPNs share a physical page"

    @given(ops=ops_strategy)
    @SETTINGS
    def test_free_block_accounting(self, config, ops):
        ftl = CONFIGS[config]()
        _run_ops(ftl, ops)
        free = sum(ftl.free_blocks_on_channel(c) for c in range(GEOMETRY.num_channels))
        # check_invariants (already run per-op) proves the full
        # partition; here pin the coarse balance too.
        assert 0 <= free <= GEOMETRY.total_blocks - ftl.retired_blocks
        assert ftl.retired_blocks >= 0

    @given(ops=ops_strategy)
    @SETTINGS
    def test_snapshot_restore_preserves_everything(self, config, ops):
        ftl = CONFIGS[config]()
        _run_ops(ftl, ops)
        clone = CONFIGS[config]()
        clone.restore(ftl.snapshot())
        clone.check_invariants()
        assert clone.page_map == ftl.page_map
        assert clone.stats == ftl.stats
        assert clone.wear_stats() == ftl.wear_stats()
        assert clone.retired_blocks == ftl.retired_blocks
        if ftl.map_cache is not None:
            assert clone.map_cache.snapshot() == ftl.map_cache.snapshot()
