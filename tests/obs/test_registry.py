"""Tests for the metrics registry."""

from __future__ import annotations

import pytest

from repro.obs import Registry


class TestCounters:
    def test_counter_get_or_create(self):
        registry = Registry()
        counter = registry.counter("sched.deferrals")
        counter.inc()
        counter.inc(4)
        assert registry.counter("sched.deferrals") is counter
        assert registry.snapshot()["sched.deferrals"] == 5

    def test_counter_name_collision_with_gauge(self):
        registry = Registry()
        registry.gauge("x", lambda: 1)
        with pytest.raises(ValueError):
            registry.counter("x")


class TestGauges:
    def test_gauge_sampled_at_read_time(self):
        registry = Registry()
        state = {"value": 1}
        registry.gauge("x", lambda: state["value"])
        state["value"] = 7
        assert registry.snapshot()["x"] == 7

    def test_gauge_reregistration_replaces(self):
        registry = Registry()
        registry.gauge("x", lambda: 1)
        registry.gauge("x", lambda: 2)
        assert registry.snapshot()["x"] == 2
        assert len(registry) == 1

    def test_gauge_name_collision_with_counter(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x", lambda: 1)


class TestReading:
    def test_names_sorted(self):
        registry = Registry()
        registry.gauge("b", lambda: 0)
        registry.counter("a")
        assert registry.names() == ["a", "b"]

    def test_render_groups_by_first_segment(self):
        registry = Registry()
        registry.gauge("ssd.ssd0.wa", lambda: 2.5)
        registry.gauge("ssd.ssd0.reads", lambda: 10)
        registry.counter("kernel.events").inc(3)
        text = registry.render(title="run metrics")
        assert text.splitlines()[0] == "run metrics"
        assert "[ssd]" in text
        assert "[kernel]" in text
        assert "ssd0.wa" in text
        # Groups appear in sorted order.
        assert text.index("[kernel]") < text.index("[ssd]")
