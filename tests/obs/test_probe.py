"""Tests for the event-kernel probe."""

from __future__ import annotations

from repro.obs import KernelProbe, Registry
from repro.sim import Simulator


def probed_sim():
    sim = Simulator()
    probe = KernelProbe()
    sim.probe = probe
    return sim, probe


class TestFireCounts:
    def test_counts_by_callback_qualname(self):
        sim, probe = probed_sim()

        def tick():
            pass

        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, tick)
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert probe.fired_total == 4
        key = tick.__qualname__
        assert probe.fired_by_callback[key] == 3

    def test_cancelled_events_not_counted(self):
        sim, probe = probed_sim()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        sim.run()
        assert probe.fired_total == 0

    def test_top_callbacks_ranked(self):
        probe = KernelProbe()

        def often():
            pass

        def rarely():
            pass

        for _ in range(5):
            probe.count_fire(often)
        probe.count_fire(rarely)
        names = [name for name, _ in probe.top_callbacks(2)]
        assert names[0] == often.__qualname__


class TestHeapHighWater:
    def test_high_water_tracks_peak_depth(self):
        sim, probe = probed_sim()
        for delay in (1.0, 2.0, 3.0, 4.0, 5.0):
            sim.schedule(delay, lambda: None)
        assert probe.heap_high_water == 5
        sim.run()
        assert probe.heap_high_water == 5  # peak, not current


class TestRunAccounting:
    def test_runs_and_sim_time_accumulate(self):
        sim, probe = probed_sim()
        sim.schedule(10.0, lambda: None)
        sim.run(until_us=50.0)
        sim.run(until_us=100.0)
        assert probe.runs == 2
        assert probe.sim_us == 100.0
        assert probe.wall_seconds >= 0.0

    def test_wall_per_sim_second_zero_before_any_run(self):
        probe = KernelProbe()
        assert probe.wall_seconds_per_sim_second == 0.0

    def test_register_metrics_exposes_gauges(self):
        sim, probe = probed_sim()
        registry = Registry()
        probe.register_metrics(registry)
        sim.schedule(1.0, lambda: None)
        sim.run()
        snapshot = registry.snapshot()
        assert snapshot["kernel.events_fired"] == 1
        assert snapshot["kernel.runs"] == 1

    def test_summary_mentions_top_callbacks(self):
        sim, probe = probed_sim()

        def busy():
            pass

        sim.schedule(1.0, busy)
        sim.run()
        text = probe.summary()
        assert "kernel probe" in text
        assert busy.__qualname__ in text
