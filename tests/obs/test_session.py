"""Tests for observability sessions and testbed integration."""

from __future__ import annotations

from repro import obs
from repro.harness import Testbed, TestbedConfig
from repro.obs import current_session
from repro.sim import Simulator
from repro.workloads import FioSpec


class TestSessionLifecycle:
    def test_no_session_by_default(self):
        assert current_session() is None

    def test_capture_installs_and_restores(self):
        with obs.capture() as session:
            assert current_session() is session
        assert current_session() is None

    def test_capture_restores_on_error(self):
        try:
            with obs.capture():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_session() is None

    def test_sessions_nest(self):
        with obs.capture() as outer:
            with obs.capture() as inner:
                assert current_session() is inner
            assert current_session() is outer

    def test_stats_only_session_has_no_tracer(self):
        with obs.capture() as session:
            sim = Simulator()
            session.attach_simulator(sim)
            assert sim.tracer is None
            assert sim.probe is session.probe
            assert session.trace_events_emitted == 0

    def test_in_memory_trace_session(self):
        with obs.capture(trace=True) as session:
            sim = Simulator()
            session.attach_simulator(sim)
            assert sim.tracer is session.tracer


def tiny_testbed():
    testbed = Testbed(TestbedConfig(scheme="gimbal", condition="fragmented", seed=7))
    testbed.add_worker(
        FioSpec("r0", io_pages=1, queue_depth=8, read_ratio=1.0), region_pages=512
    )
    testbed.add_worker(
        FioSpec("w0", io_pages=1, queue_depth=8, read_ratio=0.0), region_pages=512
    )
    return testbed


class TestTestbedIntegration:
    def test_untraced_testbed_has_no_hooks(self):
        testbed = tiny_testbed()
        assert testbed.sim.tracer is None
        assert testbed.sim.probe is None

    def test_journal_contains_io_congestion_and_bucket_events(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with obs.capture(trace_path=path) as session:
            testbed = tiny_testbed()
            assert testbed.sim.tracer is session.tracer
            testbed.run(warmup_us=2000.0, measure_us=10000.0)
        counts = session.tracer.counts_by_type
        assert counts["io_submit"] > 0
        assert counts["io_dispatch"] > 0
        assert counts["io_complete"] > 0
        assert counts["congestion"] > 0
        assert counts["bucket_deny"] > 0
        events = obs.trace.read_jsonl(path)
        assert len(events) == session.trace_events_emitted
        assert {"t", "ev", "comp"} <= set(events[0])

    def test_registry_collects_component_metrics(self):
        with obs.capture() as session:
            testbed = tiny_testbed()
            testbed.run(warmup_us=2000.0, measure_us=8000.0)
            snapshot = session.registry.snapshot()
        assert snapshot["ssd.ssd0.write_commands"] > 0
        assert snapshot["pipeline.jbof0/ssd0.reads"] > 0
        assert snapshot["kernel.events_fired"] > 0
        assert any(name.startswith("switch.") for name in snapshot)
        assert any(name.startswith("core.") for name in snapshot)
        assert any(name.startswith("net.") for name in snapshot)

    def test_stats_report_renders(self):
        with obs.capture(trace=True) as session:
            testbed = tiny_testbed()
            testbed.run(warmup_us=1000.0, measure_us=5000.0)
            report = session.stats_report()
        assert "run metrics" in report
        assert "kernel probe" in report
        assert "trace events" in report

    def test_tracing_identical_simulation_outcome(self):
        """Observability must not perturb the simulation itself."""

        def total_bandwidth(traced):
            if traced:
                with obs.capture(trace=True):
                    testbed = tiny_testbed()
                    results = testbed.run(warmup_us=2000.0, measure_us=10000.0)
            else:
                testbed = tiny_testbed()
                results = testbed.run(warmup_us=2000.0, measure_us=10000.0)
            return results["total_bandwidth_mbps"]

        assert total_bandwidth(True) == total_bandwidth(False)
