"""Tests for the typed trace buffer and JSONL journal."""

from __future__ import annotations

import io

import pytest

from repro.obs import TraceBuffer, TraceType
from repro.obs.trace import read_jsonl


class TestEmission:
    def test_emit_records_flat_event(self):
        buffer = TraceBuffer()
        buffer.emit(TraceType.IO_SUBMIT, 12.5, "pipe0", tenant="t0", bytes=4096)
        assert buffer.events == [
            {"t": 12.5, "ev": "io_submit", "comp": "pipe0", "tenant": "t0", "bytes": 4096}
        ]

    def test_tenant_omitted_when_none(self):
        buffer = TraceBuffer()
        buffer.emit(TraceType.BUCKET_REFILL, 1.0, "switch")
        assert "tenant" not in buffer.events[0]

    def test_string_type_accepted(self):
        buffer = TraceBuffer()
        buffer.emit("gc_start", 0.0, "ssd0")
        assert buffer.counts_by_type == {"gc_start": 1}

    def test_unknown_type_rejected(self):
        buffer = TraceBuffer()
        with pytest.raises(ValueError):
            buffer.emit("io_sumbit", 0.0, "pipe0")  # typo must not pass

    def test_counts_by_type_accumulate(self):
        buffer = TraceBuffer()
        for _ in range(3):
            buffer.emit(TraceType.IO_COMPLETE, 1.0, "pipe0")
        buffer.emit(TraceType.CONGESTION, 2.0, "switch")
        assert buffer.counts_by_type == {"io_complete": 3, "congestion": 1}
        assert buffer.emitted == 4

    def test_of_type_filters(self):
        buffer = TraceBuffer()
        buffer.emit(TraceType.IO_SUBMIT, 1.0, "a")
        buffer.emit(TraceType.IO_COMPLETE, 2.0, "a")
        buffer.emit(TraceType.IO_SUBMIT, 3.0, "b")
        assert [e["comp"] for e in buffer.of_type(TraceType.IO_SUBMIT)] == ["a", "b"]


class TestRetention:
    def test_limit_drops_oldest(self):
        buffer = TraceBuffer(limit=2)
        for t in (1.0, 2.0, 3.0):
            buffer.emit(TraceType.IO_SUBMIT, t, "pipe0")
        assert [e["t"] for e in buffer.events] == [2.0, 3.0]
        assert buffer.emitted == 3  # counters see everything

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            TraceBuffer(limit=0)

    def test_retain_false_keeps_nothing_in_memory(self):
        sink = io.StringIO()
        buffer = TraceBuffer(sink=sink, retain=False)
        buffer.emit(TraceType.IO_SUBMIT, 1.0, "pipe0")
        assert len(buffer) == 0
        assert buffer.emitted == 1
        assert sink.getvalue().count("\n") == 1

    def test_clear_empties_retained_events(self):
        buffer = TraceBuffer()
        buffer.emit(TraceType.IO_SUBMIT, 1.0, "pipe0")
        buffer.clear()
        assert buffer.events == []


class TestJournal:
    def test_sink_streams_jsonl(self):
        sink = io.StringIO()
        buffer = TraceBuffer(sink=sink)
        buffer.emit(TraceType.GC_START, 5.0, "ssd0", erases=2)
        line = sink.getvalue().strip()
        assert line == '{"t":5.0,"ev":"gc_start","comp":"ssd0","erases":2}'

    def test_export_and_read_roundtrip(self, tmp_path):
        buffer = TraceBuffer()
        buffer.emit(TraceType.IO_SUBMIT, 1.0, "pipe0", tenant="t0", bytes=4096)
        buffer.emit(TraceType.CREDIT, 2.0, "pipe0", tenant="t0", credit=8)
        path = str(tmp_path / "journal.jsonl")
        assert buffer.export_jsonl(path) == 2
        assert read_jsonl(path) == buffer.events

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"t":1.0,"ev":"credit","comp":"p"}\n\n')
        assert len(read_jsonl(str(path))) == 1
