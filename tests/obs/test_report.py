"""Tests for the journal summariser."""

from __future__ import annotations

import json

import pytest

from repro.obs.report import JournalSummary, main, summarize_journal


def synthetic_events():
    return [
        {"t": 0.0, "ev": "io_submit", "comp": "p0", "tenant": "t0", "op": "READ",
         "bytes": 4096},
        {"t": 1.0, "ev": "io_dispatch", "comp": "p0", "tenant": "t0", "op": "READ",
         "queued_us": 1.0},
        {"t": 5.0, "ev": "congestion", "comp": "switch.p0", "io": "READ",
         "from": "UNDERUTILIZED", "to": "CONGESTED"},
        {"t": 9.0, "ev": "io_complete", "comp": "p0", "tenant": "t0", "op": "READ",
         "bytes": 4096, "device_lat_us": 8.0},
        {"t": 10.0, "ev": "bucket_deny", "comp": "switch.p0", "io": "WRITE",
         "deficit_bytes": 4096},
        {"t": 12.0, "ev": "bucket_refill", "comp": "switch.p0", "read_tokens": 100.0,
         "write_tokens": 100.0},
        {"t": 15.0, "ev": "congestion", "comp": "switch.p0", "io": "READ",
         "from": "CONGESTED", "to": "UNDERUTILIZED"},
        {"t": 20.0, "ev": "gc_start", "comp": "ssd0", "erases": 2,
         "relocation_programs": 64, "busy_us": 500.0},
        {"t": 25.0, "ev": "io_complete", "comp": "p0", "tenant": "t1", "op": "WRITE",
         "bytes": 8192, "device_lat_us": 20.0},
    ]


class TestAggregation:
    def test_counts_by_type(self):
        summary = JournalSummary(synthetic_events())
        assert summary.counts_by_type["io_complete"] == 2
        assert summary.counts_by_type["congestion"] == 2

    def test_per_tenant_rollup(self):
        summary = JournalSummary(synthetic_events())
        t0 = summary.tenants["t0"]
        assert t0["submitted"] == 1
        assert t0["dispatched"] == 1
        assert t0["completed"] == 1
        assert t0["bytes"] == 4096
        assert t0["latency_max"] == 8.0
        assert summary.tenants["t1"]["bytes"] == 8192

    def test_state_residency_charged_between_transitions(self):
        summary = JournalSummary(synthetic_events())
        residency = summary.state_residency["switch.p0/READ"]
        # CONGESTED from t=5 to t=15; UNDERUTILIZED from t=15 to the
        # journal end at t=25.
        assert residency["CONGESTED"] == pytest.approx(10.0)
        assert residency["UNDERUTILIZED"] == pytest.approx(10.0)

    def test_bucket_and_gc_counters(self):
        summary = JournalSummary(synthetic_events())
        assert summary.bucket == {"denials": 1, "refills": 1}
        assert summary.gc["collections"] == 1
        assert summary.gc["erases"] == 2
        assert summary.gc["relocations"] == 64
        assert summary.gc["busy_us"] == 500.0

    def test_empty_journal(self):
        summary = JournalSummary([])
        assert summary.counts_by_type == {}
        assert "0 events" in summary.render()


class TestRendering:
    def test_render_includes_all_tables(self):
        text = JournalSummary(synthetic_events()).render()
        assert "events by type" in text
        assert "per-tenant IO" in text
        assert "congestion-state residency" in text
        assert "token bucket" in text
        assert "garbage collection" in text
        assert "events by component" in text

    def test_tables_elided_when_no_data(self):
        events = [{"t": 0.0, "ev": "io_submit", "comp": "p0", "tenant": "t0"}]
        text = JournalSummary(events).render()
        assert "garbage collection" not in text
        assert "token bucket" not in text


class TestCli:
    def write_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for event in synthetic_events():
                handle.write(json.dumps(event) + "\n")
        return str(path)

    def test_summarize_journal_reads_file(self, tmp_path):
        path = self.write_journal(tmp_path)
        summary = summarize_journal(path)
        assert len(summary.events) == len(synthetic_events())

    def test_main_prints_report(self, tmp_path, capsys):
        path = self.write_journal(tmp_path)
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "per-tenant IO" in out
