"""Tests for the blobstore (replication, load balancing, file IO)."""

from __future__ import annotations

import pytest

from repro.baselines import FifoScheduler
from repro.fabric import Network, NvmeOfInitiator, NvmeOfTarget, UnlimitedClientPolicy
from repro.kv import Blobstore, GlobalBlobAllocator, LocalBlobAllocator, RemoteBackend
from repro.sim import Simulator
from repro.ssd import NullDevice
from repro.workloads import AddressRegion


def build_store(sim, num_backends=2, replicate=True, load_balance=True):
    network = Network(sim)
    devices = {f"ssd{i}": NullDevice(sim, name=f"ssd{i}") for i in range(num_backends)}
    target = NvmeOfTarget(sim, network, "jbof", devices, FifoScheduler)
    initiator = NvmeOfInitiator(sim, network, "client")
    global_allocator = GlobalBlobAllocator(mega_pages=256)
    backends = {}
    for name in devices:
        backend_name = f"jbof/{name}"
        global_allocator.register_backend(backend_name, AddressRegion(0, 4096))
        session = initiator.connect(
            f"db@{backend_name}", target, name, policy=UnlimitedClientPolicy()
        )
        backends[backend_name] = RemoteBackend(backend_name, session)
    local = LocalBlobAllocator(global_allocator, micro_pages=64)
    return Blobstore(local, backends, replicate=replicate, load_balance_reads=load_balance)


class TestFiles:
    def test_create_and_extend(self, sim):
        store = build_store(sim)
        file = store.create("f")
        store.extend(file, 100)
        assert file.size_pages >= 100
        assert file.size_pages % 64 == 0

    def test_duplicate_create_rejected(self, sim):
        store = build_store(sim)
        store.create("f")
        with pytest.raises(ValueError):
            store.create("f")

    def test_replicas_on_distinct_backends(self, sim):
        store = build_store(sim)
        file = store.create("f")
        store.extend(file, 256)
        for primary, shadow in zip(file.primary, file.shadow):
            assert primary.backend != shadow.backend

    def test_replication_needs_two_backends(self, sim):
        with pytest.raises(ValueError):
            build_store(sim, num_backends=1, replicate=True)

    def test_delete_frees_blobs(self, sim):
        store = build_store(sim)
        file = store.create("f")
        store.extend(file, 64)
        held_before = store.allocator.held_megas
        live_before = store.allocator.live_micros
        store.delete(file)
        # Primary + shadow freed; their megas (now wholly free) went
        # back to the global pool instead of lingering in the local one.
        assert store.allocator.live_micros == live_before - 2
        assert store.allocator.held_megas < held_before
        assert "f" not in store.files

    def test_delete_then_departure_leaks_no_megas(self, sim):
        store = build_store(sim)
        total = store.allocator.global_allocator.total_megas
        files = []
        for index in range(4):
            file = store.create(f"f{index}")
            store.extend(file, 256)
            files.append(file)
        for file in files:
            store.delete(file)
        store.allocator.release_all()
        assert store.allocator.global_allocator.total_available_megas == total


class TestIo:
    def test_write_completes_after_both_replicas(self, sim):
        store = build_store(sim)
        file = store.create("f")
        store.extend(file, 64)
        done = []
        store.write(file, 0, 32, lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1
        primary_backend = store.backends[file.primary[0].backend]
        shadow_backend = store.backends[file.shadow[0].backend]
        assert primary_backend.writes == 1
        assert shadow_backend.writes == 1

    def test_unreplicated_write_touches_one_backend(self, sim):
        store = build_store(sim, replicate=False)
        file = store.create("f")
        store.extend(file, 64)
        store.write(file, 0, 32, lambda: None)
        sim.run()
        total_writes = sum(backend.writes for backend in store.backends.values())
        assert total_writes == 1

    def test_read_crossing_blob_boundary_splits(self, sim):
        store = build_store(sim, load_balance=False)
        file = store.create("f")
        store.extend(file, 128)
        done = []
        store.read(file, 60, 8, lambda: done.append(True))
        sim.run()
        assert done == [True]
        total_reads = sum(backend.reads for backend in store.backends.values())
        assert total_reads == 2

    def test_out_of_range_io_rejected(self, sim):
        store = build_store(sim)
        file = store.create("f")
        store.extend(file, 64)
        with pytest.raises(ValueError):
            store.write(file, 60, 10, lambda: None)
        with pytest.raises(ValueError):
            store.read(file, -1, 1, lambda: None)

    def test_load_balanced_reads_use_shadow_when_primary_loaded(self, sim):
        store = build_store(sim)
        file = store.create("f")
        store.extend(file, 64)
        primary = store.backends[file.primary[0].backend]
        # Fake load on the primary: outstanding against zero credit.
        for _ in range(10):
            primary.session.submit(
                __import__("repro.ssd.commands", fromlist=["IoOp"]).IoOp.READ, 0, 1
            )
        store.read(file, 0, 1, lambda: None)
        assert store.reads_to_shadow == 1

    def test_reads_without_load_balancing_go_primary(self, sim):
        store = build_store(sim, load_balance=False)
        file = store.create("f")
        store.extend(file, 64)
        for _ in range(5):
            store.read(file, 0, 1, lambda: None)
        assert store.reads_to_primary == 5
        assert store.reads_to_shadow == 0

    def test_tied_load_scores_alternate_between_replicas(self, sim):
        """Regression: an unloaded rack must not send 100% of reads to
        primaries -- tied load scores steer by cumulative reads."""
        store = build_store(sim)
        file = store.create("f")
        store.extend(file, 64)
        for _ in range(10):
            store.read(file, 0, 1, lambda: None)
            sim.run()  # drain so both backends return to zero load
        assert store.reads_to_primary == 5
        assert store.reads_to_shadow == 5


class TestRemoteBackend:
    def test_credit_tracked_from_completions(self, sim):
        from repro.core import GimbalScheduler
        from repro.fabric import CreditClientPolicy

        network = Network(sim)
        target = NvmeOfTarget(sim, network, "j", {"s": NullDevice(sim)}, GimbalScheduler)
        initiator = NvmeOfInitiator(sim, network, "c")
        session = initiator.connect("t", target, "s", policy=CreditClientPolicy())
        backend = RemoteBackend("j/s", session)
        done = []
        backend.read(0, 1, done.append)
        sim.run()
        assert backend.credit > 0
        assert backend.virtual_view is not None

    def test_load_score_prefers_credit_headroom(self, sim):
        store = build_store(sim)
        backend = next(iter(store.backends.values()))
        backend.credit = 10
        assert backend.load_score == -10  # idle with credit: very light
