"""Tests for the LSM tree engine."""

from __future__ import annotations

import random

import pytest

from repro.baselines import FifoScheduler
from repro.fabric import Network, NvmeOfInitiator, NvmeOfTarget, UnlimitedClientPolicy
from repro.kv import (
    Blobstore,
    GlobalBlobAllocator,
    LocalBlobAllocator,
    LsmConfig,
    LsmTree,
    RemoteBackend,
    YcsbRunner,
)
from repro.sim import Simulator
from repro.ssd import NullDevice
from repro.workloads import AddressRegion
from repro.workloads.ycsb import YCSB_WORKLOADS


def build_tree(sim, config=None):
    network = Network(sim)
    devices = {f"ssd{i}": NullDevice(sim, name=f"ssd{i}") for i in range(2)}
    target = NvmeOfTarget(sim, network, "jbof", devices, FifoScheduler)
    initiator = NvmeOfInitiator(sim, network, "client")
    global_allocator = GlobalBlobAllocator(mega_pages=512)
    backends = {}
    for name in devices:
        backend_name = f"jbof/{name}"
        global_allocator.register_backend(backend_name, AddressRegion(0, 1 << 20))
        session = initiator.connect(
            f"db@{backend_name}", target, name, policy=UnlimitedClientPolicy()
        )
        backends[backend_name] = RemoteBackend(backend_name, session)
    local = LocalBlobAllocator(global_allocator, micro_pages=64)
    store = Blobstore(local, backends)
    return LsmTree("db0", store, sim, config=config, rng=random.Random(0))


def put_sync(sim, tree, key):
    done = []
    tree.put(key, lambda: done.append(True))
    sim.run()
    assert done


def get_sync(sim, tree, key):
    result = []
    tree.get(key, result.append)
    sim.run()
    return result[0]


class TestBasics:
    def test_put_then_get_from_memtable(self, sim):
        tree = build_tree(sim)
        put_sync(sim, tree, 42)
        assert get_sync(sim, tree, 42) is True
        assert tree.stats.memtable_hits == 1

    def test_get_missing_key(self, sim):
        tree = build_tree(sim)
        assert get_sync(sim, tree, 999) is False

    def test_put_is_wal_durable_before_callback(self, sim):
        tree = build_tree(sim)
        done = []
        tree.put(1, lambda: done.append(True))
        assert not done  # callback only after the WAL write completes
        sim.run()
        assert done

    def test_wal_batches_group_commit(self, sim):
        tree = build_tree(sim)
        done = []
        for key in range(20):
            tree.put(key, lambda: done.append(True))
        sim.run()
        assert len(done) == 20

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LsmConfig(record_bytes=0)
        with pytest.raises(ValueError):
            LsmConfig(l0_compaction_trigger=8, l0_stall_trigger=4)
        with pytest.raises(ValueError):
            LsmConfig(bloom_fp_rate=1.0)


class TestFlushAndCompaction:
    @pytest.fixture
    def small_config(self):
        # 16-record memtables force frequent flushes/compactions.
        return LsmConfig(
            record_bytes=1024,
            memtable_bytes=16 * 1024,
            l0_compaction_trigger=2,
            l0_stall_trigger=6,
        )

    def test_flush_moves_data_to_l0(self, sim, small_config):
        tree = build_tree(sim, small_config)
        for key in range(40):
            put_sync(sim, tree, key)
        assert tree.stats.flushes >= 1
        assert tree.total_tables >= 1

    def test_flushed_keys_remain_readable(self, sim, small_config):
        tree = build_tree(sim, small_config)
        for key in range(60):
            put_sync(sim, tree, key)
        for key in range(60):
            assert get_sync(sim, tree, key) is True, f"lost key {key}"

    def test_compaction_triggered_and_preserves_keys(self, sim, small_config):
        tree = build_tree(sim, small_config)
        for key in range(200):
            put_sync(sim, tree, key % 80)
        assert tree.stats.compactions >= 1
        for key in range(80):
            assert tree.contains(key), f"compaction lost key {key}"

    def test_l0_bounded_by_compaction(self, sim, small_config):
        tree = build_tree(sim, small_config)
        for key in range(400):
            put_sync(sim, tree, key)
        assert len(tree.levels[0]) <= small_config.l0_stall_trigger

    def test_table_reads_counted_for_flushed_keys(self, sim, small_config):
        tree = build_tree(sim, small_config)
        for key in range(40):
            put_sync(sim, tree, key)
        before = tree.stats.table_reads
        assert get_sync(sim, tree, 0) is True
        assert tree.stats.table_reads == before + 1


class TestYcsbRunner:
    def _runner(self, sim, workload="A", records=64):
        tree = build_tree(
            sim,
            LsmConfig(record_bytes=1024, memtable_bytes=32 * 1024),
        )
        return YcsbRunner(
            tree,
            YCSB_WORKLOADS[workload],
            record_count=records,
            rng=random.Random(1),
            concurrency=2,
        )

    def test_load_inserts_all_records(self, sim):
        runner = self._runner(sim)
        loaded = []
        runner.load(lambda: loaded.append(True))
        sim.run()
        assert loaded
        for key in range(64):
            assert runner.tree.contains(key)

    def test_run_measures_ops(self, sim):
        runner = self._runner(sim)
        runner.load(lambda: None)
        sim.run()
        runner.start()
        sim.run(until_us=sim.now + 200_000.0)
        runner.stop()
        results = runner.results()
        assert results["kops"] > 0
        assert results["read_latency"]["count"] + results["update_latency"]["count"] > 10

    def test_read_only_workload_never_updates(self, sim):
        runner = self._runner(sim, workload="C")
        runner.load(lambda: None)
        sim.run()
        runner.start()
        sim.run(until_us=sim.now + 100_000.0)
        runner.stop()
        assert runner.results()["update_latency"]["count"] == 0

    def test_begin_measurement_resets(self, sim):
        runner = self._runner(sim)
        runner.load(lambda: None)
        sim.run()
        runner.start()
        sim.run(until_us=sim.now + 100_000.0)
        runner.begin_measurement()
        assert runner.read_latency.count == 0

    def test_invalid_concurrency_rejected(self, sim):
        tree = build_tree(sim)
        with pytest.raises(ValueError):
            YcsbRunner(tree, YCSB_WORKLOADS["A"], 10, random.Random(0), concurrency=0)
