"""Tests for the hierarchical blob allocator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv import BlobAddress, GlobalBlobAllocator, LocalBlobAllocator
from repro.workloads import AddressRegion


def make_global(backends=2, megas_per_backend=4, mega_pages=256, load_of=None):
    allocator = GlobalBlobAllocator(mega_pages=mega_pages, load_of=load_of)
    for index in range(backends):
        allocator.register_backend(
            f"b{index}", AddressRegion(0, megas_per_backend * mega_pages)
        )
    return allocator


class TestBlobAddress:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            BlobAddress("b", -1, 10)
        with pytest.raises(ValueError):
            BlobAddress("b", 0, 0)


class TestGlobalAllocator:
    def test_allocates_mega_sized_blobs(self):
        allocator = make_global()
        mega = allocator.allocate_mega()
        assert mega.npages == 256
        assert mega.backend in ("b0", "b1")

    def test_allocations_are_disjoint(self):
        allocator = make_global()
        seen = set()
        for _ in range(8):
            mega = allocator.allocate_mega()
            key = (mega.backend, mega.lba)
            assert key not in seen
            seen.add(key)

    def test_exhaustion_raises(self):
        allocator = make_global(backends=1, megas_per_backend=2)
        allocator.allocate_mega()
        allocator.allocate_mega()
        with pytest.raises(RuntimeError):
            allocator.allocate_mega()

    def test_free_allows_reuse(self):
        allocator = make_global(backends=1, megas_per_backend=1)
        mega = allocator.allocate_mega()
        allocator.free_mega(mega)
        again = allocator.allocate_mega()
        assert again.lba == mega.lba

    def test_double_free_rejected(self):
        allocator = make_global(backends=1)
        mega = allocator.allocate_mega()
        allocator.free_mega(mega)
        with pytest.raises(ValueError):
            allocator.free_mega(mega)

    def test_load_aware_choice(self):
        loads = {"b0": 10.0, "b1": 1.0}
        allocator = make_global(load_of=lambda name: loads[name])
        assert allocator.allocate_mega().backend == "b1"

    def test_exclude_set_respected(self):
        allocator = make_global()
        mega = allocator.allocate_mega(exclude={"b0"})
        assert mega.backend == "b1"

    def test_duplicate_backend_rejected(self):
        allocator = make_global()
        with pytest.raises(ValueError):
            allocator.register_backend("b0", AddressRegion(0, 256))

    def test_region_smaller_than_mega_rejected(self):
        allocator = GlobalBlobAllocator(mega_pages=256)
        with pytest.raises(ValueError):
            allocator.register_backend("tiny", AddressRegion(0, 100))


class TestLocalAllocator:
    def test_micro_blobs_carved_from_mega(self):
        global_allocator = make_global()
        local = LocalBlobAllocator(global_allocator, micro_pages=64)
        micro = local.allocate_micro()
        assert micro.npages == 64
        # One mega consumed, rest in the free pool.
        assert local.free_micros == 256 // 64 - 1

    def test_micro_size_must_divide_mega(self):
        global_allocator = make_global()
        with pytest.raises(ValueError):
            LocalBlobAllocator(global_allocator, micro_pages=100)

    def test_refill_on_exhaustion(self):
        global_allocator = make_global()
        local = LocalBlobAllocator(global_allocator, micro_pages=64)
        micros = [local.allocate_micro() for _ in range(10)]
        assert len(micros) == 10
        assert len({(m.backend, m.lba) for m in micros}) == 10

    def test_exclude_backend_for_replicas(self):
        global_allocator = make_global()
        local = LocalBlobAllocator(global_allocator, micro_pages=64)
        primary = local.allocate_micro()
        shadow = local.allocate_micro(exclude_backends={primary.backend})
        assert shadow.backend != primary.backend

    def test_free_returns_to_pool(self):
        global_allocator = make_global()
        local = LocalBlobAllocator(global_allocator, micro_pages=64)
        first = local.allocate_micro()
        second = local.allocate_micro()
        before = local.free_micros
        local.free_micro(first)
        # One micro still live in the mega: the free stays local.
        assert local.free_micros == before + 1
        assert second.backend == first.backend

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=120))
    def test_allocate_free_interleaving_never_double_allocates(self, ops):
        """Property: live micro blobs are always mutually disjoint."""
        global_allocator = make_global(backends=2, megas_per_backend=3, mega_pages=256)
        local = LocalBlobAllocator(global_allocator, micro_pages=64)
        live = []
        for is_alloc in ops:
            if is_alloc:
                try:
                    micro = local.allocate_micro()
                except RuntimeError:
                    continue
                live.append(micro)
            elif live:
                local.free_micro(live.pop())
            spans = sorted(
                (m.backend, m.lba, m.lba + m.npages) for m in live
            )
            for (b1, s1, e1), (b2, s2, e2) in zip(spans, spans[1:]):
                if b1 == b2:
                    assert e1 <= s2, "overlapping live blobs"


class TestReclamation:
    """Churn-path regression tests: megas must flow back to the rack."""

    def test_wholly_free_mega_returns_to_global(self):
        global_allocator = make_global(backends=2, megas_per_backend=4)
        local = LocalBlobAllocator(global_allocator, micro_pages=64)
        micros = [local.allocate_micro() for _ in range(4)]  # drains one mega
        backend = micros[0].backend
        assert global_allocator.available_megas(backend) == 3
        for micro in micros:
            local.free_micro(micro)
        # The mega coalesced and left the local pool entirely.
        assert global_allocator.available_megas(backend) == 4
        assert local.free_micros == 0
        assert local.held_megas == 0
        assert local.megas_released == 1

    def test_partial_free_keeps_mega_held(self):
        global_allocator = make_global()
        local = LocalBlobAllocator(global_allocator, micro_pages=64)
        micros = [local.allocate_micro() for _ in range(4)]
        for micro in micros[:-1]:
            local.free_micro(micro)
        assert local.held_megas == 1
        assert local.free_micros == 3
        assert global_allocator.megas_freed == 0

    def test_double_free_of_micro_rejected(self):
        global_allocator = make_global()
        local = LocalBlobAllocator(global_allocator, micro_pages=64)
        first = local.allocate_micro()
        second = local.allocate_micro()  # keeps the mega held
        local.free_micro(first)
        with pytest.raises(ValueError):
            local.free_micro(first)
        local.free_micro(second)

    def test_release_all_on_departure(self):
        global_allocator = make_global(backends=2, megas_per_backend=4)
        local = LocalBlobAllocator(global_allocator, micro_pages=64)
        micros = [local.allocate_micro() for _ in range(6)]  # spans two megas
        for micro in micros[:-1]:
            local.free_micro(micro)
        with pytest.raises(RuntimeError):
            local.release_all()  # one micro still live
        local.free_micro(micros[-1])
        local.release_all()
        assert local.held_megas == 0
        assert global_allocator.total_available_megas == global_allocator.total_megas

    def test_released_mega_reusable_by_other_instance(self):
        global_allocator = make_global(backends=1, megas_per_backend=1)
        first = LocalBlobAllocator(global_allocator, micro_pages=64)
        micro = first.allocate_micro()
        first.free_micro(micro)  # coalesces: the only mega goes back
        second = LocalBlobAllocator(global_allocator, micro_pages=64)
        again = second.allocate_micro()  # would raise before reclamation
        assert again.backend == micro.backend

    def test_reallocation_after_coalesce_tracks_new_mega(self):
        global_allocator = make_global(backends=1, megas_per_backend=2)
        local = LocalBlobAllocator(global_allocator, micro_pages=64)
        micros = [local.allocate_micro() for _ in range(4)]
        for micro in micros:
            local.free_micro(micro)
        assert local.held_megas == 0
        fresh = local.allocate_micro()
        local.free_micro(fresh)
        assert local.held_megas == 0
        assert global_allocator.total_available_megas == 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=200))
    def test_churn_conserves_the_global_pool(self, ops):
        """Property: megas are conserved -- every mega is either free in
        the global pool or held by the local allocator, and releasing
        everything restores the pre-churn availability exactly."""
        global_allocator = make_global(backends=2, megas_per_backend=3, mega_pages=256)
        total = global_allocator.total_megas
        local = LocalBlobAllocator(global_allocator, micro_pages=64)
        live = []
        for op in ops:
            if op == 0:
                try:
                    live.append(local.allocate_micro())
                except RuntimeError:
                    continue
            elif op == 1 and live:
                local.free_micro(live.pop(0))
            elif op == 2 and live:
                local.free_micro(live.pop())
            assert global_allocator.total_available_megas + local.held_megas == total
            assert local.live_micros == len(live)
        for micro in live:
            local.free_micro(micro)
        local.release_all()
        assert global_allocator.total_available_megas == total
        assert global_allocator.megas_allocated == global_allocator.megas_freed


class TestAlignmentValidation:
    def test_misaligned_mega_free_rejected(self):
        allocator = make_global(backends=1, megas_per_backend=2, mega_pages=256)
        mega = allocator.allocate_mega()
        with pytest.raises(ValueError, match="misaligned"):
            allocator.free_mega(BlobAddress(mega.backend, mega.lba + 64, mega.npages))
        # The aligned free still works afterwards: the bitmap is intact.
        allocator.free_mega(mega)

    def test_misaligned_free_does_not_corrupt_neighbor_slot(self):
        allocator = make_global(backends=1, megas_per_backend=2, mega_pages=256)
        first = allocator.allocate_mega()
        second = allocator.allocate_mega()
        with pytest.raises(ValueError):
            allocator.free_mega(BlobAddress(first.backend, second.lba + 1, 256))
        # Neither slot was freed by the bad call.
        assert allocator.available_megas(first.backend) == 0
        allocator.free_mega(first)
        allocator.free_mega(second)
