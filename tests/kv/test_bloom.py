"""Tests for the Bloom filter."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv.bloom import BloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=1000, fp_rate=0.01)
        for key in range(1000):
            bloom.add(key)
        for key in range(1000):
            assert bloom.might_contain(key)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(expected_items=2000, fp_rate=0.01)
        for key in range(2000):
            bloom.add(key)
        rng = random.Random(0)
        probes = 20_000
        false_positives = sum(
            1 for _ in range(probes) if bloom.might_contain(rng.randrange(10**9) + 10**6)
        )
        assert false_positives / probes < 0.03  # target 1%, allow slack

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(expected_items=100)
        assert not bloom.might_contain(42)

    def test_from_keys(self):
        bloom = BloomFilter.from_keys([1, 5, 9])
        assert bloom.items_added == 3
        assert bloom.might_contain(5)

    def test_from_empty_keys(self):
        bloom = BloomFilter.from_keys([])
        assert not bloom.might_contain(0)

    def test_sizing_scales_with_items(self):
        small = BloomFilter(expected_items=100, fp_rate=0.01)
        large = BloomFilter(expected_items=10_000, fp_rate=0.01)
        assert large.num_bits > 50 * small.num_bits // 2

    def test_tighter_fp_rate_uses_more_bits(self):
        loose = BloomFilter(expected_items=1000, fp_rate=0.1)
        tight = BloomFilter(expected_items=1000, fp_rate=0.001)
        assert tight.num_bits > loose.num_bits
        assert tight.num_hashes >= loose.num_hashes

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(expected_items=0)
        with pytest.raises(ValueError):
            BloomFilter(expected_items=10, fp_rate=1.0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**63), min_size=1, max_size=500))
    def test_property_no_false_negatives(self, keys):
        """Property: every added key is reported as possibly present."""
        bloom = BloomFilter.from_keys(keys)
        for key in keys:
            assert bloom.might_contain(key)
