"""Tests for LSM range scans (YCSB-E support)."""

from __future__ import annotations

import random

import pytest

from repro.kv import LsmConfig, YcsbRunner
from repro.workloads.ycsb import YCSB_WORKLOADS
from tests.kv.test_lsm import build_tree, put_sync


def scan_sync(sim, tree, start_key, count):
    result = []
    tree.scan(start_key, count, result.append)
    sim.run()
    return result[0]


class TestScan:
    def test_scan_from_memtable_only(self, sim):
        tree = build_tree(sim)
        for key in (5, 1, 9, 3):
            put_sync(sim, tree, key)
        assert scan_sync(sim, tree, 2, 3) == [3, 5, 9]

    def test_scan_spanning_memtable_and_tables(self, sim):
        config = LsmConfig(record_bytes=1024, memtable_bytes=16 * 1024)
        tree = build_tree(sim, config)
        for key in range(0, 60, 2):  # evens; several flushes
            put_sync(sim, tree, key)
        result = scan_sync(sim, tree, 10, 5)
        assert result == [10, 12, 14, 16, 18]
        assert tree.total_tables >= 1

    def test_scan_past_end_returns_partial(self, sim):
        tree = build_tree(sim)
        for key in range(5):
            put_sync(sim, tree, key)
        assert scan_sync(sim, tree, 3, 10) == [3, 4]

    def test_scan_empty_range(self, sim):
        tree = build_tree(sim)
        put_sync(sim, tree, 1)
        assert scan_sync(sim, tree, 100, 5) == []

    def test_scan_issues_table_reads(self, sim):
        config = LsmConfig(record_bytes=1024, memtable_bytes=16 * 1024)
        tree = build_tree(sim, config)
        for key in range(48):
            put_sync(sim, tree, key)
        before = tree.stats.table_reads
        scan_sync(sim, tree, 0, 30)
        assert tree.stats.table_reads > before

    def test_invalid_count_rejected(self, sim):
        tree = build_tree(sim)
        with pytest.raises(ValueError):
            tree.scan(0, 0, lambda keys: None)

    def test_deduplicates_across_levels(self, sim):
        """A key rewritten after a flush appears once in scan output."""
        config = LsmConfig(record_bytes=1024, memtable_bytes=16 * 1024)
        tree = build_tree(sim, config)
        for key in range(40):
            put_sync(sim, tree, key)
        for key in range(10, 20):  # overwrite a band
            put_sync(sim, tree, key)
        result = scan_sync(sim, tree, 8, 10)
        assert result == sorted(set(result))
        assert result == list(range(8, 18))


class TestYcsbE:
    def test_workload_e_runs(self, sim):
        tree = build_tree(sim, LsmConfig(record_bytes=1024, memtable_bytes=32 * 1024))
        runner = YcsbRunner(
            tree, YCSB_WORKLOADS["E"], record_count=128, rng=random.Random(4), concurrency=2
        )
        runner.load(lambda: None)
        sim.run()
        runner.start()
        sim.run(until_us=sim.now + 100_000.0)
        runner.stop()
        results = runner.results()
        # Scans land in the read latency histogram.
        assert results["read_latency"]["count"] > 10

    def test_scan_lengths_bounded(self):
        from repro.workloads.ycsb import YcsbWorkloadGenerator

        generator = YcsbWorkloadGenerator(
            YCSB_WORKLOADS["E"], record_count=100, rng=random.Random(5)
        )
        for _ in range(200):
            assert 1 <= generator.next_scan_length() <= 100
