"""Tests for the ADMI write-cost estimator (Section 3.4)."""

from __future__ import annotations

import pytest

from repro.core import GimbalParams, WriteCostEstimator


@pytest.fixture
def params():
    return GimbalParams(write_cost_worst=9.0, write_cost_delta=0.5, write_cost_period_us=1000.0)


@pytest.fixture
def estimator(params):
    return WriteCostEstimator(params)


class TestWriteCost:
    def test_starts_at_worst_case(self, estimator):
        assert estimator.cost == 9.0

    def test_fast_writes_decrease_additively(self, estimator):
        estimator.observe_write_latency(0.0, 50.0)
        assert estimator.cost == pytest.approx(8.5)

    def test_decreases_to_one_not_below(self, estimator):
        for i in range(100):
            estimator.observe_write_latency(i * 2000.0, 50.0)
        assert estimator.cost == 1.0

    def test_slow_writes_jump_to_midpoint_of_worst(self, estimator, params):
        # Decay the cost first.
        for i in range(10):
            estimator.observe_write_latency(i * 2000.0, 50.0)
        low = estimator.cost
        estimator.observe_write_latency(100_000.0, 5000.0)
        assert estimator.cost == pytest.approx((low + params.write_cost_worst) / 2.0)

    def test_converges_to_worst_quickly_under_pressure(self, estimator):
        for i in range(10):
            estimator.observe_write_latency(i * 2000.0, 50.0)
        for i in range(10):
            estimator.observe_write_latency(100_000.0 + i * 2000.0, 5000.0)
        assert estimator.cost > 8.9

    def test_updates_are_rate_limited(self, estimator, params):
        estimator.observe_write_latency(0.0, 50.0)
        cost_after_first = estimator.cost
        # Within the update period: no further change.
        estimator.observe_write_latency(params.write_cost_period_us / 2, 50.0)
        assert estimator.cost == cost_after_first
        assert estimator.updates == 1

    def test_threshold_boundary_uses_thresh_min(self, estimator, params):
        estimator.observe_write_latency(0.0, params.thresh_min_us - 1.0)
        assert estimator.cost < params.write_cost_worst
        fresh = WriteCostEstimator(params)
        fresh.observe_write_latency(0.0, params.thresh_min_us)
        assert fresh.cost == params.write_cost_worst  # midpoint of worst with worst

    def test_cost_stays_in_valid_band(self, estimator, params):
        import random

        rng = random.Random(0)
        for i in range(500):
            estimator.observe_write_latency(i * 2000.0, rng.uniform(10.0, 5000.0))
            assert 1.0 <= estimator.cost <= params.write_cost_worst
