"""Tests for the DRR + virtual-slot scheduler (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core import DrrSlotScheduler, GimbalParams, GimbalTenant
from repro.core.rate_control import DualTokenBucket
from repro.fabric.request import FabricRequest
from repro.ssd.commands import IoOp

KB128 = 32  # pages


def make_request(tenant, op=IoOp.READ, npages=KB128, priority=0):
    return FabricRequest(tenant_id=tenant, op=op, lba=0, npages=npages, priority=priority)


def full_bucket(params):
    bucket = DualTokenBucket(params)
    bucket.read_tokens = bucket.max_tokens
    bucket.write_tokens = bucket.max_tokens
    return bucket


class TestGimbalTenant:
    def test_push_peek_pop_fifo_single_priority(self):
        tenant = GimbalTenant("t", 1.0, 128 * 1024)
        first = make_request("t")
        second = make_request("t")
        tenant.push(first)
        tenant.push(second)
        assert tenant.peek() is first
        assert tenant.pop() is first
        assert tenant.pop() is second
        assert tenant.peek() is None

    def test_pop_empty_rejected(self):
        tenant = GimbalTenant("t", 1.0, 128 * 1024)
        with pytest.raises(IndexError):
            tenant.pop()

    def test_pending_counter(self):
        tenant = GimbalTenant("t", 1.0, 128 * 1024)
        tenant.push(make_request("t"))
        tenant.push(make_request("t"))
        assert tenant.pending == 2
        tenant.pop()
        assert tenant.pending == 1

    def test_higher_priority_served_more_often(self):
        """Weighted round-robin: priority-1 gets ~2x priority-0."""
        tenant = GimbalTenant("t", 1.0, 128 * 1024)
        for _ in range(60):
            tenant.push(make_request("t", priority=0))
            tenant.push(make_request("t", priority=1))
        served = {0: 0, 1: 0}
        for _ in range(60):
            request = tenant.pop()
            served[request.priority] += 1
        assert served[1] > served[0]

    def test_peek_matches_pop(self):
        tenant = GimbalTenant("t", 1.0, 128 * 1024)
        for index in range(20):
            tenant.push(make_request("t", priority=index % 3))
        while tenant.pending:
            peeked = tenant.peek()
            popped = tenant.pop()
            assert peeked is popped


class TestDrrSlotScheduler:
    @pytest.fixture
    def params(self):
        return GimbalParams()

    @pytest.fixture
    def drr(self, params):
        return DrrSlotScheduler(params)

    def _pump_all(self, drr, params, weighted=None):
        submitted = []
        bucket = full_bucket(params)

        def refill_submit(request, tenant, slot):
            submitted.append(request)
            bucket.read_tokens = bucket.max_tokens
            bucket.write_tokens = bucket.max_tokens

        weight_fn = weighted or (lambda request: float(request.size_bytes))
        drr.pump(weight_fn, bucket, refill_submit)
        return submitted

    def test_slot_limit_shrinks_with_tenants(self, drr, params):
        drr.add_tenant("a")
        assert drr.slot_limit == params.slot_threshold
        for index in range(params.slot_threshold):
            drr.add_tenant(f"t{index}")
        assert drr.slot_limit == 1

    def test_single_tenant_submits_up_to_slots(self, drr, params):
        tenant = drr.add_tenant("a")
        for _ in range(20):
            drr.enqueue(tenant, make_request("a"))
        submitted = self._pump_all(drr, params)
        # 128 KiB IOs: one per slot, slot_threshold slots.
        assert len(submitted) == params.slot_threshold
        assert tenant.deferred

    def test_deferred_tenant_resumes_on_slot_drain(self, drr, params):
        tenant = drr.add_tenant("a")
        for _ in range(params.slot_threshold + 1):
            drr.enqueue(tenant, make_request("a"))
        submitted = self._pump_all(drr, params)
        slot = tenant.slots._in_use[0]
        for _ in range(slot.submits):
            if tenant.slots.on_completion(slot):
                drr.on_slot_freed(tenant)
        assert tenant.in_active
        more = self._pump_all(drr, params)
        assert len(more) == 1

    def test_two_tenants_share_equally(self, drr, params):
        a = drr.add_tenant("a")
        b = drr.add_tenant("b")
        for _ in range(10):
            drr.enqueue(a, make_request("a"))
            drr.enqueue(b, make_request("b"))
        submitted = self._pump_all(drr, params)
        by_tenant = {"a": 0, "b": 0}
        for request in submitted:
            by_tenant[request.tenant_id] += 1
        assert by_tenant["a"] == by_tenant["b"]

    def test_expensive_write_waits_more_rounds(self, drr, params):
        """A cost-3 write is served once per ~3 reads (the paper's
        example: three round-robin rounds per weighted 128 KiB write).

        Completions are applied instantly so virtual slots never bind
        and the deficit accounting is the only limiter.
        """
        reader = drr.add_tenant("r")
        writer = drr.add_tenant("w")
        for _ in range(30):
            drr.enqueue(reader, make_request("r", op=IoOp.READ))
            drr.enqueue(writer, make_request("w", op=IoOp.WRITE))

        def weighted(request):
            if request.op.is_write:
                return 3.0 * request.size_bytes
            return float(request.size_bytes)

        submitted = []
        bucket = full_bucket(params)

        def submit(request, tenant, slot):
            submitted.append(request)
            bucket.read_tokens = bucket.max_tokens
            bucket.write_tokens = bucket.max_tokens
            # Instant completion: free the slot immediately.
            for _ in range(slot.submits - slot.completions):
                if tenant.slots.on_completion(slot):
                    drr.on_slot_freed(tenant)
                    break

        drr.pump(weighted, bucket, submit)
        window = submitted[:16]
        reads = sum(1 for r in window if r.op.is_read)
        writes = sum(1 for r in window if r.op.is_write)
        assert reads >= 2.5 * writes

    def test_token_shortage_reported(self, drr, params):
        tenant = drr.add_tenant("a")
        drr.enqueue(tenant, make_request("a"))
        bucket = DualTokenBucket(params)
        bucket.discard()
        outcome, op, deficit = drr.pump(
            lambda request: float(request.size_bytes), bucket, lambda *a: None
        )
        assert outcome == "tokens"
        assert op is IoOp.READ
        assert deficit == pytest.approx(128 * 1024)

    def test_tokens_consumed_on_submit(self, drr, params):
        tenant = drr.add_tenant("a")
        drr.enqueue(tenant, make_request("a"))
        bucket = full_bucket(params)
        before = bucket.read_tokens
        drr.pump(lambda request: float(request.size_bytes), bucket, lambda *a: None)
        assert bucket.read_tokens == before - 128 * 1024

    def test_weighted_tenant_gets_proportional_share(self, drr, params):
        """Weighted DRR: a weight-3 tenant accrues quantum 3x as fast."""
        heavy = drr.add_tenant("heavy", weight=3.0)
        light = drr.add_tenant("light", weight=1.0)
        for _ in range(40):
            drr.enqueue(heavy, make_request("heavy"))
            drr.enqueue(light, make_request("light"))
        submitted = []
        bucket = full_bucket(params)

        def submit(request, tenant, slot):
            submitted.append(request)
            bucket.read_tokens = bucket.max_tokens
            bucket.write_tokens = bucket.max_tokens
            for _ in range(slot.submits - slot.completions):
                if tenant.slots.on_completion(slot):
                    drr.on_slot_freed(tenant)
                    break

        drr.pump(lambda request: float(request.size_bytes), bucket, submit)
        window = submitted[:32]
        heavy_count = sum(1 for r in window if r.tenant_id == "heavy")
        light_count = len(window) - heavy_count
        assert heavy_count >= 2 * light_count

    def test_invalid_weight_rejected(self, drr):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            drr.add_tenant("bad", weight=0.0)

    def test_trim_requests_cost_one_page_of_tokens(self, drr, params):
        from repro.ssd.commands import IoOp as _IoOp

        tenant = drr.add_tenant("a")
        drr.enqueue(tenant, make_request("a", op=_IoOp.TRIM, npages=64))
        bucket = full_bucket(params)
        before = bucket.write_tokens
        drr.pump(lambda request: 4096.0, bucket, lambda *a: None)
        assert before - bucket.write_tokens == 4096

    def test_idempotent_tenant_registration(self, drr):
        first = drr.add_tenant("a")
        second = drr.add_tenant("a")
        assert first is second

    def test_empty_pump_is_idle(self, drr, params):
        outcome, _, _ = drr.pump(
            lambda request: float(request.size_bytes), full_bucket(params), lambda *a: None
        )
        assert outcome == "idle"
