"""Tests for the delay-based congestion control (Algorithm 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CongestionState, GimbalParams, LatencyMonitor


@pytest.fixture
def params():
    return GimbalParams(thresh_min_us=250.0, thresh_max_us=1500.0)


@pytest.fixture
def monitor(params):
    return LatencyMonitor(params)


class TestStates:
    def test_initial_threshold_is_midrange(self, monitor, params):
        expected = (params.thresh_min_us + params.thresh_max_us) / 2.0
        assert monitor.threshold == expected

    def test_low_latency_is_underutilized(self, monitor):
        assert monitor.observe(50.0) is CongestionState.UNDERUTILIZED

    def test_midband_latency_is_congestion_avoidance(self, monitor):
        assert monitor.observe(400.0) is CongestionState.CONGESTION_AVOIDANCE

    def test_latency_above_threshold_is_congested(self, monitor):
        assert monitor.observe(1100.0) is CongestionState.CONGESTED

    def test_latency_above_max_is_overloaded(self, monitor):
        assert monitor.observe(5000.0) is CongestionState.OVERLOADED

    def test_state_ordering_reflects_load(self):
        order = [
            CongestionState.UNDERUTILIZED,
            CongestionState.CONGESTION_AVOIDANCE,
            CongestionState.CONGESTED,
            CongestionState.OVERLOADED,
        ]
        assert [s.value for s in order] == sorted(s.value for s in order)


class TestThresholdDynamics:
    def test_threshold_decays_toward_ewma_in_avoidance(self, monitor):
        monitor.observe(400.0)
        before = monitor.threshold
        monitor.observe(400.0)
        after = monitor.threshold
        assert after < before
        assert after >= 400.0 * 0.5  # decays toward, never below min clamp

    def test_congested_raises_threshold_toward_max(self, monitor, params):
        monitor.observe(400.0)  # pull threshold down
        for _ in range(10):
            monitor.observe(400.0)
        low_threshold = monitor.threshold
        state = monitor.observe(3000.0)  # EWMA jumps above threshold
        assert state in (CongestionState.CONGESTED, CongestionState.OVERLOADED)
        assert monitor.threshold > low_threshold

    def test_overloaded_pins_threshold_at_max(self, monitor, params):
        monitor.observe(params.thresh_max_us * 4)
        assert monitor.threshold == params.thresh_max_us

    def test_threshold_clamped_to_min(self, monitor, params):
        for _ in range(100):
            monitor.observe(10.0)
        assert monitor.threshold >= params.thresh_min_us

    def test_threshold_never_exceeds_max(self, monitor, params):
        for _ in range(100):
            monitor.observe(10_000.0)
            assert monitor.threshold <= params.thresh_max_us

    def test_speculative_signal_on_slow_latency_creep(self, monitor):
        """The threshold chases the EWMA down, so even a slow upward
        creep in latency crosses it and fires a congested signal."""
        states = []
        latency = 600.0
        for _ in range(60):
            states.append(monitor.observe(latency))
            latency += 5.0
        assert CongestionState.CONGESTED in states

    def test_signal_counters(self, monitor):
        monitor.observe(50.0)
        monitor.observe(5000.0)
        assert monitor.signals[CongestionState.UNDERUTILIZED] >= 1
        assert sum(monitor.signals.values()) == 2


class TestEwmaSmoothing:
    def test_single_spike_is_tolerated(self, monitor):
        """alpha_D smooths isolated spikes (paper Section 4.2)."""
        for _ in range(20):
            monitor.observe(100.0)
        state = monitor.observe(1600.0)
        # EWMA = 0.5*100 + 0.5*1600 = 850 < thresh_max: not overloaded.
        assert state is not CongestionState.OVERLOADED

    def test_ewma_latency_exposed(self, monitor):
        monitor.observe(100.0)
        assert monitor.ewma_latency_us == pytest.approx(100.0)


class TestParams:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            GimbalParams(thresh_min_us=2000.0, thresh_max_us=1500.0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            GimbalParams(alpha_d=0.0)
        with pytest.raises(ValueError):
            GimbalParams(alpha_t=1.5)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            GimbalParams(beta=0.5)

    def test_rate_band_validated(self):
        with pytest.raises(ValueError):
            GimbalParams(min_rate_bytes_per_us=10.0, initial_rate_bytes_per_us=1.0)

    def test_with_overrides(self):
        params = GimbalParams().with_overrides(thresh_max_us=3000.0)
        assert params.thresh_max_us == 3000.0

    def test_p3600_retuning(self):
        from repro.core.config import P3600_PARAMS

        assert P3600_PARAMS.thresh_max_us == 3000.0


class TestThresholdInvariants:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                      allow_infinity=False),
            min_size=1,
            max_size=500,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_threshold_stays_in_configured_band(self, latencies):
        """Property: no latency sequence can push the dynamic threshold
        outside [thresh_min_us, thresh_max_us] (Algorithm 1's clamp)."""
        params = GimbalParams()
        monitor = LatencyMonitor(params)
        for latency in latencies:
            monitor.observe(latency)
            assert params.thresh_min_us <= monitor.threshold <= params.thresh_max_us

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False,
                      allow_infinity=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_signals_and_transitions_consistent(self, latencies):
        """Property: signal counts total the observations and transition
        count never exceeds observations."""
        monitor = LatencyMonitor(GimbalParams())
        for latency in latencies:
            monitor.observe(latency)
        assert sum(monitor.signals.values()) == len(latencies)
        assert 0 <= monitor.transitions <= len(latencies)
