"""Integration tests for the assembled Gimbal switch and its ablations."""

from __future__ import annotations

import pytest

from repro.core import GimbalParams, GimbalScheduler
from repro.core.ablations import (
    ABLATIONS,
    FixedThresholdGimbal,
    NoSlotGimbal,
    SingleBucketGimbal,
    SingleTokenBucket,
    StaticWriteCostGimbal,
)
from repro.fabric import CreditClientPolicy, Network, NvmeOfInitiator, NvmeOfTarget
from repro.sim import Simulator
from repro.ssd import SsdDevice, precondition_clean
from repro.ssd.commands import IoOp


def build_gimbal_rig(sim, scheduler_factory=GimbalScheduler):
    network = Network(sim)
    device = SsdDevice(sim)
    precondition_clean(device)
    target = NvmeOfTarget(sim, network, "jbof", {"ssd0": device}, scheduler_factory)
    initiator = NvmeOfInitiator(sim, network, "client")
    sessions = [
        initiator.connect(f"t{i}", target, "ssd0", policy=CreditClientPolicy())
        for i in range(2)
    ]
    return target.pipelines["ssd0"].scheduler, sessions


class TestGimbalScheduler:
    def test_end_to_end_io_flows(self, sim):
        scheduler, sessions = build_gimbal_rig(sim)
        done = []
        for _ in range(20):
            sessions[0].submit(IoOp.READ, 0, 1, on_complete=done.append)
        sim.run()
        assert len(done) == 20

    def test_credits_granted(self, sim):
        scheduler, sessions = build_gimbal_rig(sim)
        done = []
        sessions[0].submit(IoOp.READ, 0, 32, on_complete=done.append)
        sim.run()
        assert done[0].credit_grant >= 1

    def test_virtual_view_has_headroom_fields(self, sim):
        scheduler, sessions = build_gimbal_rig(sim)
        sessions[0].submit(IoOp.READ, 0, 1)
        sim.run()
        view = scheduler.virtual_view()
        assert set(view) >= {
            "target_rate_mbps",
            "read_headroom_mbps",
            "write_headroom_mbps",
            "write_cost",
        }
        assert view["read_headroom_mbps"] + view["write_headroom_mbps"] == pytest.approx(
            view["target_rate_mbps"]
        )

    def test_write_cost_decays_on_buffered_writes(self, sim):
        scheduler, sessions = build_gimbal_rig(sim)
        state = {"n": 0}

        def loop(request):
            state["n"] += 1
            if sim.now < 300_000.0:
                # Light sequential write load: absorbed by the buffer.
                sessions[0].submit(IoOp.WRITE, (state["n"] * 8) % 4096, 8, on_complete=loop)

        sessions[0].submit(IoOp.WRITE, 0, 8, on_complete=loop)
        sim.run(until_us=400_000.0)
        assert scheduler.write_cost.cost < scheduler.write_cost.worst

    def test_congestion_state_property(self, sim):
        scheduler, sessions = build_gimbal_rig(sim)
        sessions[0].submit(IoOp.READ, 0, 1)
        sim.run()
        assert scheduler.congestion_state is not None

    def test_unknown_tenant_auto_registered(self, sim):
        """A request from a tenant the switch has not seen registers it."""
        scheduler, sessions = build_gimbal_rig(sim)
        # credit_for on unknown tenant is 0, after traffic it is positive.
        assert scheduler.credit_for("nobody") == 0


class TestAblations:
    def test_registry_contains_all_variants(self):
        assert set(ABLATIONS) == {
            "full",
            "fixed-threshold",
            "single-bucket",
            "no-slots",
            "static-cost",
        }

    @pytest.mark.parametrize(
        "factory",
        [FixedThresholdGimbal, SingleBucketGimbal, NoSlotGimbal, StaticWriteCostGimbal],
    )
    def test_each_variant_moves_io(self, sim, factory):
        scheduler, sessions = build_gimbal_rig(sim, scheduler_factory=factory)
        done = []
        for _ in range(10):
            sessions[0].submit(IoOp.READ, 0, 1, on_complete=done.append)
            sessions[0].submit(IoOp.WRITE, 64, 1, on_complete=done.append)
        sim.run()
        assert len(done) == 20

    def test_static_cost_never_updates(self, sim):
        scheduler, sessions = build_gimbal_rig(sim, scheduler_factory=StaticWriteCostGimbal)
        for _ in range(10):
            sessions[0].submit(IoOp.WRITE, 0, 8)
        sim.run()
        assert scheduler.write_cost.cost == scheduler.write_cost.worst

    def test_fixed_threshold_monitor_does_not_scale(self):
        params = GimbalParams()
        from repro.core.ablations import FixedThresholdMonitor

        monitor = FixedThresholdMonitor(params, fixed_threshold_us=2000.0)
        for _ in range(50):
            monitor.observe(400.0)
        assert monitor.threshold == 2000.0

    def test_single_bucket_shares_pool(self):
        params = GimbalParams()
        bucket = SingleTokenBucket(params)
        bucket.discard()
        bucket.update(1000.0, target_rate=100.0, write_cost=9.0)
        assert bucket.tokens_for(IoOp.READ) == bucket.tokens_for(IoOp.WRITE)
        bucket.consume(IoOp.WRITE, 4096)
        assert bucket.tokens_for(IoOp.READ) == bucket.tokens_for(IoOp.WRITE)

    def test_no_slot_variant_never_defers(self, sim):
        scheduler, sessions = build_gimbal_rig(sim, scheduler_factory=NoSlotGimbal)
        for _ in range(64):
            sessions[0].submit(IoOp.READ, 0, 32)
        sim.run()
        tenant = scheduler.drr.tenants["t0"]
        assert not tenant.deferred
