"""Tests for the rate controller and dual token bucket (Algorithms 1/4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CongestionState, GimbalParams
from repro.core.rate_control import CompletionRateMeter, DualTokenBucket, RateController
from repro.ssd.commands import IoOp


@pytest.fixture
def params():
    return GimbalParams()


class TestCompletionRateMeter:
    def test_rate_over_window(self):
        meter = CompletionRateMeter(window_us=1000.0)
        meter.record(100.0, 4096)
        meter.record(200.0, 4096)
        assert meter.rate_bytes_per_us(500.0) == pytest.approx(8192 / 1000.0)

    def test_old_events_evicted(self):
        meter = CompletionRateMeter(window_us=1000.0)
        meter.record(0.0, 4096)
        assert meter.rate_bytes_per_us(2000.0) == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            CompletionRateMeter(window_us=0.0)


class TestDualTokenBucket:
    def test_split_follows_write_cost(self, params):
        bucket = DualTokenBucket(params)
        bucket.discard()
        bucket.update(100.0, target_rate=100.0, write_cost=9.0)
        # 10000 tokens split 9:1.
        assert bucket.read_tokens == pytest.approx(9000.0)
        assert bucket.write_tokens == pytest.approx(1000.0)

    def test_cost_one_splits_evenly(self, params):
        bucket = DualTokenBucket(params)
        bucket.discard()
        bucket.update(100.0, target_rate=100.0, write_cost=1.0)
        assert bucket.read_tokens == pytest.approx(bucket.write_tokens)

    def test_overflow_spills_to_sibling(self, params):
        bucket = DualTokenBucket(params)
        bucket.discard()
        bucket.write_tokens = 0.0
        # Enough tokens that the read bucket overflows its cap.
        bucket.update(1_000_000.0, target_rate=10.0, write_cost=9.0)
        assert bucket.read_tokens == bucket.max_tokens
        assert bucket.write_tokens > 0.0

    def test_both_buckets_capped(self, params):
        bucket = DualTokenBucket(params)
        bucket.update(10_000_000.0, target_rate=1000.0, write_cost=2.0)
        assert bucket.read_tokens <= bucket.max_tokens
        assert bucket.write_tokens <= bucket.max_tokens

    def test_consume_decrements_right_bucket(self, params):
        bucket = DualTokenBucket(params)
        read_before = bucket.read_tokens
        write_before = bucket.write_tokens
        bucket.consume(IoOp.READ, 4096)
        assert bucket.read_tokens == read_before - 4096
        assert bucket.write_tokens == write_before

    def test_consume_without_tokens_rejected(self, params):
        bucket = DualTokenBucket(params)
        bucket.discard()
        with pytest.raises(ValueError):
            bucket.consume(IoOp.WRITE, 4096)

    def test_discard_zeroes_both(self, params):
        bucket = DualTokenBucket(params)
        bucket.discard()
        assert bucket.read_tokens == 0.0
        assert bucket.write_tokens == 0.0

    def test_no_time_passed_no_tokens(self, params):
        bucket = DualTokenBucket(params)
        bucket.discard()
        bucket.update(0.0, target_rate=1000.0, write_cost=1.0)
        assert bucket.read_tokens == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=10_000.0),
        st.floats(min_value=1.0, max_value=9.0),
        st.floats(min_value=0.1, max_value=1_000.0),
    )
    def test_token_generation_conserved_until_caps(self, rate, write_cost, elapsed):
        """Property: generated tokens = rate x time when below the caps."""
        params = GimbalParams()
        bucket = DualTokenBucket(params)
        bucket.discard()
        bucket.update(elapsed, target_rate=rate, write_cost=write_cost)
        produced = bucket.read_tokens + bucket.write_tokens
        expected = min(rate * elapsed, 2 * bucket.max_tokens)
        assert produced <= expected + 1e-6
        if rate * elapsed <= bucket.max_tokens:
            assert produced == pytest.approx(rate * elapsed)


class TestRateController:
    def _controller(self, params=None):
        return RateController(params or GimbalParams())

    def test_congestion_avoidance_probes_up(self):
        controller = self._controller()
        before = controller.target_rate
        # Prime both meters so the completion clamp is generous.
        for t in range(10):
            controller.meter.record(float(t), 10_000_000)
            controller.clamp_meter.record(float(t), 10_000_000)
        controller.on_completion(10.0, IoOp.READ, 131072, CongestionState.CONGESTION_AVOIDANCE)
        assert controller.target_rate > before

    def test_congested_backs_off(self):
        controller = self._controller()
        before = controller.target_rate
        controller.on_completion(10.0, IoOp.READ, 131072, CongestionState.CONGESTED)
        assert controller.target_rate < before

    def test_underutilized_probes_faster_than_avoidance(self):
        params = GimbalParams()
        fast = self._controller(params)
        slow = self._controller(params)
        for t in range(10):
            fast.meter.record(float(t), 10_000_000)
            slow.meter.record(float(t), 10_000_000)
        fast.on_completion(10.0, IoOp.READ, 131072, CongestionState.UNDERUTILIZED)
        slow.on_completion(10.0, IoOp.READ, 131072, CongestionState.CONGESTION_AVOIDANCE)
        assert fast.target_rate > slow.target_rate

    def test_overloaded_snaps_to_completion_rate_and_discards(self):
        params = GimbalParams()
        controller = self._controller(params)
        # 100 MB over 10ms window = 10 bytes/us completion rate.
        controller.meter.record(0.0, 10_000_000)
        controller.on_completion(100.0, IoOp.WRITE, 131072, CongestionState.OVERLOADED)
        assert controller.bucket.read_tokens == 0.0
        assert controller.bucket.write_tokens == 0.0
        assert controller.target_rate <= 10_000_000 / params.completion_rate_window_us

    def test_rate_clamped_to_band(self):
        params = GimbalParams()
        controller = self._controller(params)
        for _ in range(10_000):
            controller.on_completion(0.0, IoOp.READ, 131072, CongestionState.CONGESTED)
        assert controller.target_rate >= params.min_rate_bytes_per_us

    def test_completion_headroom_clamp_under_pressure(self):
        """Once any IO type shows congestion pressure, the target is
        capped at headroom x the (long-window) completion rate."""
        params = GimbalParams(completion_headroom=1.5)
        controller = self._controller(params)
        for _ in range(1000):
            controller.on_completion(
                1.0,
                IoOp.READ,
                4096,
                CongestionState.CONGESTION_AVOIDANCE,
                overall_state=CongestionState.CONGESTION_AVOIDANCE,
            )
        measured = controller.clamp_meter.rate_bytes_per_us(1.0)
        assert controller.target_rate <= measured * params.completion_headroom + 1e-6

    def test_no_clamp_while_underutilized(self):
        """While everything is under-utilised the probe runs free --
        the paper's fast convergence after a workload shift."""
        controller = self._controller()
        before = controller.target_rate
        for t in range(200):
            controller.on_completion(
                float(t), IoOp.READ, 131072, CongestionState.UNDERUTILIZED
            )
        assert controller.target_rate > before
