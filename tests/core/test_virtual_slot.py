"""Tests for virtual slots and per-tenant slot management (Section 3.5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlotManager, VirtualSlot

SLOT_BYTES = 128 * 1024


class TestVirtualSlot:
    def test_slot_fills_at_capacity(self):
        slot = VirtualSlot(SLOT_BYTES)
        slot.add(SLOT_BYTES)
        assert slot.is_full

    def test_slot_holds_many_small_ios(self):
        slot = VirtualSlot(SLOT_BYTES)
        for _ in range(31):
            slot.add(4096)
        assert not slot.is_full
        slot.add(4096)
        assert slot.is_full
        assert slot.submits == 32

    def test_add_to_full_slot_rejected(self):
        slot = VirtualSlot(SLOT_BYTES)
        slot.add(SLOT_BYTES)
        with pytest.raises(RuntimeError):
            slot.add(4096)

    def test_drains_when_all_complete(self):
        slot = VirtualSlot(SLOT_BYTES)
        slot.add(SLOT_BYTES)
        assert slot.complete_one() is True
        assert slot.drained

    def test_not_drained_while_incomplete(self):
        slot = VirtualSlot(SLOT_BYTES)
        for _ in range(32):
            slot.add(4096)
        for _ in range(31):
            assert slot.complete_one() is False
        assert slot.complete_one() is True

    def test_excess_completions_rejected(self):
        slot = VirtualSlot(SLOT_BYTES)
        slot.add(SLOT_BYTES)
        slot.complete_one()
        with pytest.raises(RuntimeError):
            slot.complete_one()

    def test_weighted_size_can_overshoot_capacity(self):
        """A cost-weighted write larger than the slot closes it alone."""
        slot = VirtualSlot(SLOT_BYTES)
        slot.add(9 * SLOT_BYTES)
        assert slot.is_full
        assert slot.submits == 1


class TestSlotManager:
    def test_place_within_limit(self):
        manager = SlotManager(SLOT_BYTES)
        slot = manager.try_place(4096, limit=2)
        assert slot is not None
        assert manager.slots_in_use == 1

    def test_small_ios_share_one_slot(self):
        manager = SlotManager(SLOT_BYTES)
        slots = {id(manager.try_place(4096, limit=1)) for _ in range(32)}
        assert len(slots) == 1

    def test_limit_blocks_new_slot(self):
        manager = SlotManager(SLOT_BYTES)
        manager.try_place(SLOT_BYTES, limit=1)  # fills the only slot
        assert manager.try_place(4096, limit=1) is None

    def test_drain_frees_capacity(self):
        manager = SlotManager(SLOT_BYTES)
        slot = manager.try_place(SLOT_BYTES, limit=1)
        assert manager.try_place(4096, limit=1) is None
        freed = manager.on_completion(slot)
        assert freed is True
        assert manager.try_place(4096, limit=1) is not None

    def test_last_drained_io_count_tracks_slot_contents(self):
        manager = SlotManager(SLOT_BYTES)
        placed = [manager.try_place(4096, limit=1) for _ in range(32)]
        assert all(slot is placed[0] for slot in placed)
        for _ in range(31):
            assert manager.on_completion(placed[0]) is False
        assert manager.on_completion(placed[0]) is True
        assert manager.last_drained_io_count == 32

    def test_multiple_slots_up_to_limit(self):
        manager = SlotManager(SLOT_BYTES)
        first = manager.try_place(SLOT_BYTES, limit=2)
        second = manager.try_place(SLOT_BYTES, limit=2)
        assert first is not second
        assert manager.slots_in_use == 2
        assert manager.try_place(4096, limit=2) is None

    def test_invalid_weighted_size_rejected(self):
        manager = SlotManager(SLOT_BYTES)
        with pytest.raises(ValueError):
            manager.try_place(0.0, limit=1)

    def test_invalid_slot_bytes_rejected(self):
        with pytest.raises(ValueError):
            SlotManager(0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=9 * SLOT_BYTES), min_size=1, max_size=200))
    def test_in_use_never_exceeds_limit(self, sizes):
        """Property: slots in use never exceed the limit; every placed IO
        is eventually completable and every slot drains."""
        manager = SlotManager(SLOT_BYTES)
        limit = 3
        open_slots = []
        for weighted in sizes:
            slot = manager.try_place(float(weighted), limit)
            if slot is None:
                # Complete everything outstanding to free capacity.
                for pending_slot, count in open_slots:
                    for _ in range(count):
                        manager.on_completion(pending_slot)
                open_slots.clear()
                slot = manager.try_place(float(weighted), limit)
                assert slot is not None
            if open_slots and open_slots[-1][0] is slot:
                open_slots[-1] = (slot, open_slots[-1][1] + 1)
            else:
                open_slots.append((slot, 1))
            assert manager.slots_in_use <= limit
