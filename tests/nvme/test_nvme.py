"""Tests for the NVMe layer: commands, namespaces, qpairs, controller."""

from __future__ import annotations

import pytest

from repro.nvme import (
    Namespace,
    NamespaceError,
    NvmeCommand,
    NvmeController,
    NvmeOpcode,
    NvmeQueuePair,
    NvmeStatus,
    QueueFullError,
)
from repro.ssd import NullDevice, SsdDevice, precondition_clean


class TestCommands:
    def test_size_bytes(self):
        assert NvmeCommand(NvmeOpcode.READ, 1, 0, 32).size_bytes == 131072

    def test_unique_cids(self):
        a = NvmeCommand(NvmeOpcode.READ, 1, 0, 1)
        b = NvmeCommand(NvmeOpcode.READ, 1, 0, 1)
        assert a.cid != b.cid

    def test_invalid_command_rejected(self):
        with pytest.raises(ValueError):
            NvmeCommand(NvmeOpcode.READ, 0, 0, 1)  # nsid 0
        with pytest.raises(ValueError):
            NvmeCommand(NvmeOpcode.READ, 1, -1, 1)
        with pytest.raises(ValueError):
            NvmeCommand(NvmeOpcode.READ, 1, 0, 0)


class TestNamespace:
    def test_translate(self):
        namespace = Namespace(1, "ssd0", base_lpn=100, npages=50)
        assert namespace.translate(0, 1) == 100
        assert namespace.translate(49, 1) == 149

    def test_out_of_range_rejected(self):
        namespace = Namespace(1, "ssd0", base_lpn=100, npages=50)
        with pytest.raises(NamespaceError):
            namespace.translate(49, 2)
        with pytest.raises(NamespaceError):
            namespace.translate(-1, 1)

    def test_invalid_namespace_rejected(self):
        with pytest.raises(ValueError):
            Namespace(0, "s", 0, 10)
        with pytest.raises(ValueError):
            Namespace(1, "s", 0, 0)

    def test_size_bytes(self):
        assert Namespace(1, "s", 0, 256).size_bytes == 1 << 20


class TestController:
    def test_namespaces_pack_sequentially(self, sim):
        controller = NvmeController(sim, NullDevice(sim))
        first = controller.create_namespace(100)
        second = controller.create_namespace(200)
        assert first.base_lpn == 0
        assert second.base_lpn == 100
        assert second.nsid == 2

    def test_namespace_beyond_capacity_rejected(self, sim):
        device = SsdDevice(sim)
        controller = NvmeController(sim, device)
        with pytest.raises(ValueError):
            controller.create_namespace(device.exported_pages + 1)

    def test_read_write_round_trip(self, sim):
        device = SsdDevice(sim)
        precondition_clean(device)
        controller = NvmeController(sim, device)
        controller.create_namespace(1024)
        completions = []
        controller.execute(
            NvmeCommand(NvmeOpcode.WRITE, 1, 10, 4), completions.append
        )
        controller.execute(
            NvmeCommand(NvmeOpcode.READ, 1, 10, 4), completions.append
        )
        sim.run()
        assert len(completions) == 2
        assert all(completion.ok for completion in completions)
        assert all(completion.latency_us > 0 for completion in completions)

    def test_invalid_namespace_fails_fast(self, sim):
        controller = NvmeController(sim, NullDevice(sim))
        completions = []
        controller.execute(NvmeCommand(NvmeOpcode.READ, 9, 0, 1), completions.append)
        sim.run()
        assert completions[0].status is NvmeStatus.INVALID_NAMESPACE

    def test_lba_out_of_range_fails(self, sim):
        controller = NvmeController(sim, NullDevice(sim))
        controller.create_namespace(10)
        completions = []
        controller.execute(NvmeCommand(NvmeOpcode.READ, 1, 8, 4), completions.append)
        sim.run()
        assert completions[0].status is NvmeStatus.LBA_OUT_OF_RANGE

    def test_flush_is_immediate(self, sim):
        controller = NvmeController(sim, NullDevice(sim))
        controller.create_namespace(10)
        completions = []
        controller.execute(NvmeCommand(NvmeOpcode.FLUSH, 1, 0, 1), completions.append)
        sim.run()
        assert completions[0].ok
        assert completions[0].latency_us == 0.0


class TestQueuePair:
    def test_depth_enforced(self, sim):
        controller = NvmeController(sim, SsdDevice(sim))
        controller.create_namespace(256)
        qpair = controller.create_queue_pair(depth=2)
        qpair.submit(NvmeCommand(NvmeOpcode.WRITE, 1, 0, 1))
        qpair.submit(NvmeCommand(NvmeOpcode.WRITE, 1, 1, 1))
        with pytest.raises(QueueFullError):
            qpair.submit(NvmeCommand(NvmeOpcode.WRITE, 1, 2, 1))
        sim.run()
        assert qpair.outstanding == 0
        assert qpair.completed == 2

    def test_qids_increment(self, sim):
        controller = NvmeController(sim, NullDevice(sim))
        a = controller.create_queue_pair()
        b = controller.create_queue_pair()
        assert a.qid != b.qid

    def test_invalid_depth_rejected(self, sim):
        controller = NvmeController(sim, NullDevice(sim))
        with pytest.raises(ValueError):
            NvmeQueuePair(controller, depth=0)


class TestFabricNamespaceIntegration:
    def test_pipeline_translates_namespace_lbas(self, sim):
        from repro.baselines import FifoScheduler
        from repro.fabric import Network, NvmeOfInitiator, NvmeOfTarget
        from repro.ssd.commands import IoOp

        network = Network(sim)
        device = SsdDevice(sim)
        precondition_clean(device)
        target = NvmeOfTarget(sim, network, "j", {"ssd0": device}, FifoScheduler)
        initiator = NvmeOfInitiator(sim, network, "c")
        session = initiator.connect("t", target, "ssd0")
        namespace = Namespace(1, "ssd0", base_lpn=5000, npages=100)
        target.pipeline("ssd0").register_tenant("t", session.client_port, namespace=namespace)
        done = []
        session.submit(IoOp.READ, 0, 1, on_complete=done.append)
        sim.run()
        assert len(done) == 1

    def test_pipeline_rejects_out_of_namespace_io(self, sim):
        from repro.baselines import FifoScheduler
        from repro.fabric import Network, NvmeOfInitiator, NvmeOfTarget
        from repro.ssd.commands import IoOp

        network = Network(sim)
        target = NvmeOfTarget(sim, network, "j", {"ssd0": NullDevice(sim)}, FifoScheduler)
        initiator = NvmeOfInitiator(sim, network, "c")
        session = initiator.connect("t", target, "ssd0")
        namespace = Namespace(1, "ssd0", base_lpn=0, npages=10)
        target.pipeline("ssd0").register_tenant("t", session.client_port, namespace=namespace)
        session.submit(IoOp.READ, 50, 1)
        with pytest.raises(NamespaceError):
            sim.run()
