"""Tests for the rack-scale tenant population generator."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.workloads.population import (
    DEFAULT_TENANT_CLASSES,
    TenantClass,
    TenantPopulation,
    TenantSpec,
    peak_concurrent,
)


def make_population(**kwargs):
    defaults = dict(tenants=100, horizon_us=1_000_000.0, seed=3)
    defaults.update(kwargs)
    return TenantPopulation(**defaults)


class TestTenantClass:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            TenantClass("x", "Z", (128,), (1,))

    def test_empty_options_rejected(self):
        with pytest.raises(ValueError):
            TenantClass("x", "A", (), (1,))


class TestTenantSpec:
    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            TenantSpec("t", "c", "A", 0, 1, 0.0, 1.0)
        with pytest.raises(ValueError):
            TenantSpec("t", "c", "A", 1, 1, 0.0, 0.0)

    def test_departure_derived(self):
        spec = TenantSpec("t", "c", "A", 1, 1, 10.0, 5.0)
        assert spec.departure_us == 15.0


class TestTenantPopulation:
    def test_generates_requested_count(self):
        specs = make_population().generate()
        assert len(specs) == 100
        assert len({spec.name for spec in specs}) == 100

    def test_deterministic_from_seed(self):
        assert make_population(seed=9).generate() == make_population(seed=9).generate()

    def test_different_seeds_differ(self):
        assert make_population(seed=1).generate() != make_population(seed=2).generate()

    def test_sorted_by_arrival(self):
        specs = make_population(churn=0.8).generate()
        arrivals = [spec.arrival_us for spec in specs]
        assert arrivals == sorted(arrivals)

    def test_zero_churn_means_simultaneous_arrival(self):
        specs = make_population(churn=0.0).generate()
        assert all(spec.arrival_us == 0.0 for spec in specs)

    def test_churn_spreads_arrivals(self):
        specs = make_population(tenants=200, churn=1.0).generate()
        arrivals = {spec.arrival_us for spec in specs}
        assert len(arrivals) > 100  # exponential gaps, not a burst
        assert max(arrivals) <= 1_000_000.0

    def test_every_tenant_departs_within_horizon_plus_floor(self):
        population = make_population(tenants=300, churn=1.0)
        for spec in population.generate():
            assert spec.departure_us <= population.horizon_us + population.min_lifetime_us

    def test_heavy_hitter_skew_over_classes(self):
        specs = make_population(tenants=2000, skew=0.95).generate()
        counts = Counter(spec.tenant_class for spec in specs)
        head = DEFAULT_TENANT_CLASSES[0].name
        tail = DEFAULT_TENANT_CLASSES[-1].name
        assert counts[head] > 3 * counts[tail]
        # The long tail is a mix, not a monoculture.
        assert len(counts) == len(DEFAULT_TENANT_CLASSES)

    def test_specs_pull_from_class_options(self):
        classes = {cls.name: cls for cls in DEFAULT_TENANT_CLASSES}
        for spec in make_population(tenants=200).generate():
            cls = classes[spec.tenant_class]
            assert spec.workload == cls.workload
            assert spec.record_count in cls.record_counts
            assert spec.concurrency in cls.concurrencies

    def test_external_rng_supported(self):
        rng = random.Random(5)
        specs = TenantPopulation(tenants=10, horizon_us=1e6, rng=rng).generate()
        assert len(specs) == 10

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_population(tenants=0)
        with pytest.raises(ValueError):
            make_population(horizon_us=0.0)
        with pytest.raises(ValueError):
            make_population(churn=1.5)
        with pytest.raises(ValueError):
            make_population(classes=())


class TestPeakConcurrent:
    def test_counts_overlap(self):
        specs = [
            TenantSpec("a", "c", "A", 1, 1, 0.0, 10.0),
            TenantSpec("b", "c", "A", 1, 1, 5.0, 10.0),
            TenantSpec("c", "c", "A", 1, 1, 20.0, 5.0),
        ]
        assert peak_concurrent(specs) == 2

    def test_population_peak_below_total_under_churn(self):
        specs = make_population(tenants=200, churn=1.0, mean_lifetime_us=100_000.0).generate()
        assert 0 < peak_concurrent(specs) < 200
