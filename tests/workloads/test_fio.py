"""Tests for the fio-style workers (via the full fabric stack)."""

from __future__ import annotations

import pytest

from repro.harness import Testbed, TestbedConfig
from repro.workloads import FioSpec


def build(scheme="vanilla", condition="clean", **spec_kwargs):
    testbed = Testbed(TestbedConfig(scheme=scheme, condition=condition))
    spec = FioSpec(name="w0", **spec_kwargs)
    worker = testbed.add_worker(spec)
    return testbed, worker


class TestFioSpec:
    def test_io_bytes(self):
        assert FioSpec("w", io_pages=32, queue_depth=4).io_bytes == 131072

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"io_pages": 0, "queue_depth": 1},
            {"io_pages": 1, "queue_depth": 0},
            {"io_pages": 1, "queue_depth": 1, "read_ratio": 1.5},
            {"io_pages": 1, "queue_depth": 1, "pattern": "zigzag"},
            {"io_pages": 1, "queue_depth": 1, "rate_limit_mbps": -5.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FioSpec("w", **kwargs)


class TestFioWorker:
    def test_closed_loop_measures_throughput(self):
        testbed, worker = build(io_pages=1, queue_depth=16)
        results = testbed.run(warmup_us=20_000, measure_us=100_000)
        assert results["workers"][0]["bandwidth_mbps"] > 10.0
        assert results["workers"][0]["iops"] > 1000.0

    def test_start_is_idempotent(self):
        testbed, worker = build(io_pages=1, queue_depth=4)
        worker.start()
        worker.start()
        assert worker.session.inflight <= 4

    def test_stop_drains(self):
        testbed, worker = build(io_pages=1, queue_depth=4)
        worker.start()
        testbed.sim.run(until_us=5_000.0)
        worker.stop()
        testbed.sim.run()
        assert worker.session.inflight == 0

    def test_rate_limit_respected(self):
        testbed, worker = build(io_pages=1, queue_depth=8, rate_limit_mbps=50.0)
        results = testbed.run(warmup_us=50_000, measure_us=500_000)
        bandwidth = results["workers"][0]["bandwidth_mbps"]
        assert bandwidth <= 55.0
        assert bandwidth > 30.0

    def test_mixed_workload_records_both_ops(self):
        testbed, worker = build(io_pages=1, queue_depth=8, read_ratio=0.5)
        testbed.run(warmup_us=10_000, measure_us=100_000)
        assert worker.read_latency.count > 0
        assert worker.write_latency.count > 0

    def test_write_only_records_no_reads(self):
        testbed, worker = build(io_pages=1, queue_depth=4, read_ratio=0.0)
        testbed.run(warmup_us=10_000, measure_us=50_000)
        assert worker.read_latency.count == 0
        assert worker.write_latency.count > 0

    def test_begin_measurement_resets(self):
        testbed, worker = build(io_pages=1, queue_depth=4)
        worker.start()
        testbed.sim.run(until_us=20_000.0)
        assert worker.read_latency.count > 0
        worker.begin_measurement()
        assert worker.read_latency.count == 0

    def test_device_latency_below_e2e(self):
        testbed, worker = build(io_pages=1, queue_depth=1)
        testbed.run(warmup_us=10_000, measure_us=50_000)
        assert worker.device_read_latency.mean < worker.read_latency.mean


class TestTestbed:
    def test_region_allocation_is_disjoint(self):
        testbed = Testbed(TestbedConfig())
        a = testbed.allocate_region("ssd0", 1000)
        b = testbed.allocate_region("ssd0", 1000)
        assert a.end <= b.start

    def test_region_exhaustion_rejected(self):
        testbed = Testbed(TestbedConfig())
        with pytest.raises(ValueError):
            testbed.allocate_region("ssd0", 10**9)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            TestbedConfig(scheme="magic")

    def test_results_include_write_amplification(self):
        testbed, _ = build(io_pages=1, queue_depth=1)
        results = testbed.run(warmup_us=1_000, measure_us=10_000)
        assert "ssd0" in results["write_amplification"]

    def test_multiple_ssds(self):
        testbed = Testbed(TestbedConfig(num_ssds=2))
        testbed.add_worker(FioSpec("a", io_pages=1, queue_depth=2), ssd="ssd0")
        testbed.add_worker(FioSpec("b", io_pages=1, queue_depth=2), ssd="ssd1")
        results = testbed.run(warmup_us=5_000, measure_us=20_000)
        assert len(results["workers"]) == 2
        assert all(w["bandwidth_mbps"] > 0 for w in results["workers"])

    def test_null_profile_testbed(self):
        testbed = Testbed(TestbedConfig(device_profile="null", condition="none"))
        testbed.add_worker(FioSpec("a", io_pages=1, queue_depth=8))
        results = testbed.run(warmup_us=5_000, measure_us=50_000)
        assert results["workers"][0]["iops"] > 100_000
