"""Tests for trace replay."""

from __future__ import annotations

import pytest

from repro.baselines import FifoScheduler
from repro.fabric import Network, NvmeOfInitiator, NvmeOfTarget
from repro.ssd import NullDevice
from repro.ssd.commands import IoOp
from repro.workloads import ReplayWorker, TraceRecord, TraceRecorder


def make_session(sim):
    network = Network(sim)
    target = NvmeOfTarget(sim, network, "j", {"s": NullDevice(sim)}, FifoScheduler)
    return NvmeOfInitiator(sim, network, "c").connect("t", target, "s")


def make_trace(n=10, gap_us=100.0):
    return [
        TraceRecord(
            t_submit_us=i * gap_us,
            t_complete_us=i * gap_us + 50.0,
            tenant_id="orig",
            op="read" if i % 2 == 0 else "write",
            lba=i * 8,
            npages=8,
            e2e_latency_us=50.0,
            device_latency_us=30.0,
        )
        for i in range(n)
    ]


class TestReplayWorker:
    def test_timed_replay_preserves_spacing(self, sim):
        session = make_session(sim)
        worker = ReplayWorker(session, make_trace(5, gap_us=1000.0), mode="timed")
        done = []
        worker.start(on_done=lambda: done.append(sim.now))
        sim.run()
        assert worker.completed == 5
        # Last submission at 4 x 1000us after start.
        assert done[0] >= 4000.0

    def test_speedup_compresses_the_trace(self, sim):
        session = make_session(sim)
        worker = ReplayWorker(session, make_trace(5, gap_us=1000.0), mode="timed", speed=10.0)
        done = []
        worker.start(on_done=lambda: done.append(sim.now))
        sim.run()
        assert done[0] < 1000.0

    def test_closed_replay_respects_queue_depth(self, sim):
        session = make_session(sim)
        worker = ReplayWorker(session, make_trace(20), mode="closed", queue_depth=2)
        worker.start()
        assert worker.submitted == 2
        sim.run()
        assert worker.completed == 20

    def test_lba_offset_applied(self, sim):
        session = make_session(sim)
        seen = []
        original_submit = session.submit

        def spy(op, lba, npages, **kwargs):
            seen.append(lba)
            return original_submit(op, lba, npages, **kwargs)

        session.submit = spy
        worker = ReplayWorker(session, make_trace(3), lba_offset=1000)
        worker.start()
        sim.run()
        assert all(lba >= 1000 for lba in seen)

    def test_results_summary(self, sim):
        session = make_session(sim)
        worker = ReplayWorker(session, make_trace(8), mode="closed")
        worker.start()
        sim.run()
        results = worker.results()
        assert results["completed"] == 8
        assert results["latency"]["count"] == 8

    def test_invalid_configuration_rejected(self, sim):
        session = make_session(sim)
        with pytest.raises(ValueError):
            ReplayWorker(session, make_trace(1), mode="warp")
        with pytest.raises(ValueError):
            ReplayWorker(session, make_trace(1), speed=0.0)
        with pytest.raises(ValueError):
            ReplayWorker(session, [])

    def test_record_then_replay_round_trip(self, sim):
        """Capture a live run, then replay the trace: identical op mix."""
        session = make_session(sim)
        recorder = TraceRecorder()
        for index in range(12):
            session.submit(
                IoOp.READ if index % 3 else IoOp.WRITE, index, 1,
                on_complete=recorder.observe,
            )
        sim.run()
        replay_session = make_session(sim)
        worker = ReplayWorker(replay_session, recorder.records, mode="closed")
        worker.start()
        sim.run()
        assert worker.completed == 12
