"""Tests for IO trace recording."""

from __future__ import annotations

from repro.baselines import FifoScheduler
from repro.fabric import Network, NvmeOfInitiator, NvmeOfTarget
from repro.ssd import NullDevice
from repro.ssd.commands import IoOp
from repro.workloads import TraceRecorder


def drive_ios(sim, recorder, count=5):
    network = Network(sim)
    target = NvmeOfTarget(sim, network, "j", {"s": NullDevice(sim)}, FifoScheduler)
    initiator = NvmeOfInitiator(sim, network, "c")
    session = initiator.connect("t", target, "s")
    for index in range(count):
        session.submit(IoOp.READ if index % 2 == 0 else IoOp.WRITE, index, 1,
                       on_complete=recorder.observe)
    sim.run()


class TestTraceRecorder:
    def test_records_completed_ios(self, sim):
        recorder = TraceRecorder()
        drive_ios(sim, recorder, count=6)
        assert len(recorder) == 6
        # Completions can reorder (writes take the extra RDMA_READ hop),
        # so check the op mix rather than positions.
        ops = [record.op for record in recorder.records]
        assert ops.count("read") == 3
        assert ops.count("write") == 3
        assert all(record.e2e_latency_us > 0 for record in recorder.records)

    def test_tenants_listed(self, sim):
        recorder = TraceRecorder()
        drive_ios(sim, recorder)
        assert list(recorder.tenants()) == ["t"]

    def test_csv_round_trip(self, sim, tmp_path):
        recorder = TraceRecorder()
        drive_ios(sim, recorder, count=4)
        path = str(tmp_path / "trace.csv")
        recorder.save_csv(path)
        loaded = TraceRecorder.load_csv(path)
        assert len(loaded) == 4
        assert loaded.records == recorder.records
