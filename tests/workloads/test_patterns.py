"""Tests for address-pattern generators."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import AddressRegion, RandomPattern, SequentialPattern


class TestAddressRegion:
    def test_end(self):
        region = AddressRegion(start=100, npages=50)
        assert region.end == 150

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            AddressRegion(start=-1, npages=10)
        with pytest.raises(ValueError):
            AddressRegion(start=0, npages=0)


class TestRandomPattern:
    def test_addresses_stay_in_region(self):
        region = AddressRegion(start=1000, npages=640)
        pattern = RandomPattern(region, io_pages=32, rng=random.Random(0))
        for _ in range(500):
            lba = pattern.next_lba()
            assert region.start <= lba
            assert lba + 32 <= region.end

    def test_addresses_are_io_aligned(self):
        region = AddressRegion(start=0, npages=1024)
        pattern = RandomPattern(region, io_pages=32, rng=random.Random(1))
        for _ in range(100):
            assert pattern.next_lba() % 32 == 0

    def test_covers_region(self):
        region = AddressRegion(start=0, npages=64)
        pattern = RandomPattern(region, io_pages=8, rng=random.Random(2))
        seen = {pattern.next_lba() for _ in range(500)}
        assert seen == {0, 8, 16, 24, 32, 40, 48, 56}

    def test_io_larger_than_region_rejected(self):
        with pytest.raises(ValueError):
            RandomPattern(AddressRegion(0, 16), io_pages=32, rng=random.Random(0))


class TestSequentialPattern:
    def test_strided_progression(self):
        pattern = SequentialPattern(AddressRegion(100, 96), io_pages=32)
        assert [pattern.next_lba() for _ in range(3)] == [100, 132, 164]

    def test_wraps_around(self):
        pattern = SequentialPattern(AddressRegion(0, 64), io_pages=32)
        lbas = [pattern.next_lba() for _ in range(4)]
        assert lbas == [0, 32, 0, 32]

    def test_start_offset(self):
        pattern = SequentialPattern(AddressRegion(0, 96), io_pages=32, start_offset=32)
        assert pattern.next_lba() == 32

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=16, max_value=512))
    def test_never_escapes_region(self, io_pages, region_pages):
        """Property: sequential addressing never crosses region bounds."""
        if io_pages > region_pages:
            io_pages = region_pages
        region = AddressRegion(7, region_pages)
        pattern = SequentialPattern(region, io_pages)
        for _ in range(100):
            lba = pattern.next_lba()
            assert region.start <= lba
            assert lba + io_pages <= region.end
