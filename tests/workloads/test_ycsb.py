"""Tests for the YCSB generator and Zipfian sampler."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.workloads import YCSB_WORKLOADS, YcsbOp, YcsbSpec, YcsbWorkloadGenerator, ZipfianGenerator


class TestZipfian:
    def test_ranks_in_range(self):
        zipf = ZipfianGenerator(1000, rng=random.Random(0), scrambled=False)
        for _ in range(2000):
            assert 0 <= zipf.next() < 1000

    def test_unscrambled_is_head_heavy(self):
        zipf = ZipfianGenerator(10_000, rng=random.Random(1), scrambled=False)
        counts = Counter(zipf.next() for _ in range(20_000))
        top10 = sum(counts[i] for i in range(10))
        # Zipf(0.99): the 10 hottest of 10k items draw a large share.
        assert top10 > 0.2 * 20_000

    def test_rank_zero_most_popular(self):
        zipf = ZipfianGenerator(1000, rng=random.Random(2), scrambled=False)
        counts = Counter(zipf.next_rank() for _ in range(20_000))
        assert counts[0] == max(counts.values())

    def test_scrambling_spreads_hot_keys(self):
        zipf = ZipfianGenerator(10_000, rng=random.Random(3), scrambled=True)
        counts = Counter(zipf.next() for _ in range(20_000))
        hottest = counts.most_common(1)[0][0]
        # The hottest key is (almost surely) not rank 0 after scrambling.
        assert hottest != 0

    def test_determinism(self):
        a = ZipfianGenerator(1000, rng=random.Random(7))
        b = ZipfianGenerator(1000, rng=random.Random(7))
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)


class TestWorkloadSpecs:
    def test_core_workloads_present(self):
        assert set(YCSB_WORKLOADS) == {"A", "B", "C", "D", "E", "F"}

    def test_mixes_sum_to_one(self):
        for spec in YCSB_WORKLOADS.values():
            total = spec.read + spec.update + spec.insert + spec.rmw + spec.scan
            assert abs(total - 1.0) < 1e-9

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            YcsbSpec("X", read=0.5, update=0.4)

    def test_invalid_distribution_rejected(self):
        with pytest.raises(ValueError):
            YcsbSpec("X", read=1.0, distribution="uniform")


class TestWorkloadGenerator:
    def _mix(self, name, n=20_000):
        generator = YcsbWorkloadGenerator(
            YCSB_WORKLOADS[name], record_count=10_000, rng=random.Random(5)
        )
        return Counter(generator.next_op()[0] for _ in range(n))

    def test_workload_a_mix(self):
        counts = self._mix("A")
        assert abs(counts[YcsbOp.READ] / 20_000 - 0.5) < 0.02
        assert abs(counts[YcsbOp.UPDATE] / 20_000 - 0.5) < 0.02

    def test_workload_b_mix(self):
        counts = self._mix("B")
        assert abs(counts[YcsbOp.READ] / 20_000 - 0.95) < 0.01

    def test_workload_c_read_only(self):
        counts = self._mix("C")
        assert counts[YcsbOp.READ] == 20_000

    def test_workload_d_inserts_advance_keyspace(self):
        generator = YcsbWorkloadGenerator(
            YCSB_WORKLOADS["D"], record_count=1000, rng=random.Random(6)
        )
        inserted = [key for op, key in (generator.next_op() for _ in range(5000)) if op is YcsbOp.INSERT]
        assert inserted == sorted(inserted)
        assert inserted[0] == 1000

    def test_workload_d_reads_skew_recent(self):
        generator = YcsbWorkloadGenerator(
            YCSB_WORKLOADS["D"], record_count=10_000, rng=random.Random(7)
        )
        reads = [key for op, key in (generator.next_op() for _ in range(20_000)) if op is YcsbOp.READ]
        recent = sum(1 for key in reads if key > 9000)
        assert recent > len(reads) * 0.5

    def test_workload_f_has_rmw(self):
        counts = self._mix("F")
        assert counts[YcsbOp.READ_MODIFY_WRITE] > 0.45 * 20_000

    def test_keys_in_range(self):
        generator = YcsbWorkloadGenerator(
            YCSB_WORKLOADS["A"], record_count=500, rng=random.Random(8)
        )
        for _ in range(2000):
            op, key = generator.next_op()
            assert 0 <= key < 500

    def test_invalid_record_count_rejected(self):
        with pytest.raises(ValueError):
            YcsbWorkloadGenerator(YCSB_WORKLOADS["A"], record_count=0, rng=random.Random(0))
