"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestCliList:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestCliRun:
    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig999"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_quick_table2(self, capsys):
        assert main(["run", "table2", "--quick"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_run_quick_fig15(self, capsys):
        assert main(["run", "fig15", "--quick"]) == 0
        assert "Figure 15" in capsys.readouterr().out

    def test_every_experiment_is_importable(self):
        import importlib

        for name, (module_path, quick_kwargs) in EXPERIMENTS.items():
            module = importlib.import_module(module_path)
            assert hasattr(module, "run"), name
            assert hasattr(module, "summarize"), name


class TestCliCalibrate:
    def test_calibrate_prints_anchors(self, capsys):
        assert main(["calibrate", "--duration-ms", "60"]) == 0
        out = capsys.readouterr().out
        assert "Device anchors" in out
        assert "4K rand read QD128" in out


class TestCliSimulate:
    def test_simulate_prints_tenants(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--scheme",
                    "vanilla",
                    "--readers",
                    "1",
                    "--writers",
                    "1",
                    "--seconds",
                    "0.1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reader0" in out
        assert "writer0" in out

    def test_parser_rejects_bad_io_size(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--io-kb", "7"])
