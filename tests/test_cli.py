"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestCliList:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestCliRun:
    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig999"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_quick_table2(self, capsys):
        assert main(["run", "table2", "--quick"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_run_quick_fig15(self, capsys):
        assert main(["run", "fig15", "--quick"]) == 0
        assert "Figure 15" in capsys.readouterr().out

    def test_every_experiment_is_importable(self):
        import importlib

        for name, (module_path, quick_kwargs) in EXPERIMENTS.items():
            module = importlib.import_module(module_path)
            assert hasattr(module, "run"), name
            assert hasattr(module, "summarize"), name


class TestCliAliases:
    def test_module_basename_resolves(self):
        from repro.cli import _resolve_experiment

        assert _resolve_experiment("fig09") == "fig09"
        assert _resolve_experiment("fig09_dynamic") == "fig09"
        assert _resolve_experiment("fig06_utilization") == "fig06"
        assert _resolve_experiment("no_such_thing") is None

    def test_run_accepts_module_basename(self, capsys):
        assert main(["run", "table2_comparison", "--quick"]) == 0
        assert "Table 2" in capsys.readouterr().out


class TestCliObservability:
    def test_run_with_trace_writes_journal(self, tmp_path, capsys):
        from repro.obs.trace import read_jsonl

        path = str(tmp_path / "out.jsonl")
        assert main(["run", "fig02", "--quick", "--trace", path]) == 0
        captured = capsys.readouterr()
        assert "Figure 2" in captured.out
        assert "trace journal" in captured.err
        events = read_jsonl(path)
        assert events
        kinds = {event["ev"] for event in events}
        assert "io_submit" in kinds
        assert "io_complete" in kinds

    def test_run_with_stats_prints_report(self, capsys):
        assert main(["run", "fig15", "--quick", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "run metrics" in out
        assert "kernel probe" in out

    def test_no_session_left_behind(self, tmp_path):
        from repro.obs import current_session

        path = str(tmp_path / "out.jsonl")
        main(["run", "fig15", "--quick", "--trace", path])
        assert current_session() is None


class TestCliCalibrate:
    def test_calibrate_prints_anchors(self, capsys):
        assert main(["calibrate", "--duration-ms", "60"]) == 0
        out = capsys.readouterr().out
        assert "Device anchors" in out
        assert "4K rand read QD128" in out


class TestCliSimulate:
    def test_simulate_prints_tenants(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--scheme",
                    "vanilla",
                    "--readers",
                    "1",
                    "--writers",
                    "1",
                    "--seconds",
                    "0.1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reader0" in out
        assert "writer0" in out

    def test_parser_rejects_bad_io_size(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--io-kb", "7"])
