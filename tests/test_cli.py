"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestCliList:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestCliRun:
    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig999"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_quick_table2(self, capsys):
        assert main(["run", "table2", "--quick"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_run_quick_fig15(self, capsys):
        assert main(["run", "fig15", "--quick"]) == 0
        assert "Figure 15" in capsys.readouterr().out

    def test_every_experiment_is_importable(self):
        import importlib

        for name, (module_path, quick_kwargs) in EXPERIMENTS.items():
            module = importlib.import_module(module_path)
            assert hasattr(module, "run"), name
            assert hasattr(module, "summarize"), name


class TestCliAliases:
    def test_module_basename_resolves(self):
        from repro.cli import _resolve_experiment

        assert _resolve_experiment("fig09") == "fig09"
        assert _resolve_experiment("fig09_dynamic") == "fig09"
        assert _resolve_experiment("fig06_utilization") == "fig06"
        assert _resolve_experiment("no_such_thing") is None

    def test_run_accepts_module_basename(self, capsys):
        assert main(["run", "table2_comparison", "--quick"]) == 0
        assert "Table 2" in capsys.readouterr().out


class TestCliObservability:
    def test_run_with_trace_writes_journal(self, tmp_path, capsys):
        from repro.obs.trace import read_jsonl

        path = str(tmp_path / "out.jsonl")
        assert main(["run", "fig02", "--quick", "--trace", path]) == 0
        captured = capsys.readouterr()
        assert "Figure 2" in captured.out
        assert "trace journal" in captured.err
        events = read_jsonl(path)
        assert events
        kinds = {event["ev"] for event in events}
        assert "io_submit" in kinds
        assert "io_complete" in kinds

    def test_run_with_stats_prints_report(self, capsys):
        assert main(["run", "fig15", "--quick", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "run metrics" in out
        assert "kernel probe" in out

    def test_no_session_left_behind(self, tmp_path):
        from repro.obs import current_session

        path = str(tmp_path / "out.jsonl")
        main(["run", "fig15", "--quick", "--trace", path])
        assert current_session() is None


class TestCliCache:
    def test_run_with_cache_warm_restart(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "fig02", "--quick", "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr()
        assert "misses" in cold.err
        assert main(["run", "fig02", "--quick", "--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr()
        # Warm restart: all hits, and the printed figure is unchanged.
        assert "0 misses" in warm.err
        assert warm.out == cold.out

    def test_no_cache_overrides_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert main(["run", "fig02", "--quick", "--no-cache"]) == 0
        assert not (tmp_path / "envcache").exists()

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        import json

        cache_dir = str(tmp_path / "cache")
        assert main(["run", "fig02", "--quick", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] > 0
        assert stats["total_bytes"] > 0
        assert stats["runs"][-1]["sweep"] == "fig02"

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_cache_prune_respects_entry_budget(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "fig02", "--quick", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir", cache_dir, "--max-entries", "2"]) == 0
        assert "pruned" in capsys.readouterr().out
        import json

        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 2

    def test_single_point_driver_caches_too(self, capsys, tmp_path):
        # Since the declarative-sweep port every driver has a sweep --
        # even table2's property matrix, which is one cached point.
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "table2", "--quick", "--cache-dir", cache_dir]) == 0
        captured = capsys.readouterr()
        assert "does not support --cache" not in captured.err
        assert "Table 2" in captured.out
        import json

        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 1


class TestCliCalibrate:
    def test_calibrate_prints_anchors(self, capsys):
        assert main(["calibrate", "--duration-ms", "60"]) == 0
        out = capsys.readouterr().out
        assert "Device anchors" in out
        assert "4K rand read QD128" in out


class TestCliSimulate:
    def test_simulate_prints_tenants(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--scheme",
                    "vanilla",
                    "--readers",
                    "1",
                    "--writers",
                    "1",
                    "--seconds",
                    "0.1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reader0" in out
        assert "writer0" in out

    def test_parser_rejects_bad_io_size(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--io-kb", "7"])


class TestParseGridValues:
    def test_comma_list_preserves_ints(self):
        from repro.cli import _parse_grid_values

        assert _parse_grid_values("1,2,16") == [1, 2, 16]
        assert _parse_grid_values("0.5,1.0") == [0.5, 1.0]

    def test_range_expansion(self):
        from repro.cli import _parse_grid_values

        assert _parse_grid_values("1:5:3") == [1, 3, 5]
        assert _parse_grid_values("0:1:3") == [0.0, 0.5, 1.0]

    def test_bad_range_rejected(self):
        from repro.cli import _parse_grid_values

        with pytest.raises(ValueError):
            _parse_grid_values("1:5")
        with pytest.raises(ValueError):
            _parse_grid_values("1:5:1")


class TestCliExplore:
    TINY = [
        "--grid", "qd=1,8,64",
        "--grid", "read_ratio=1.0",
        "--grid", "io_pages=1",
        "--budget", "1.0",
        "--no-cache",
        "--quiet",
    ]

    def test_explore_tiny_grid(self, capsys):
        assert main(["explore", "fig04", *self.TINY]) == 0
        out = capsys.readouterr().out
        assert "explored fig04-interference" in out
        assert "crossover" in out

    def test_explore_writes_json_report(self, tmp_path, capsys):
        report_path = str(tmp_path / "report.json")
        assert main(["explore", "fig04", *self.TINY, "--json", report_path]) == 0
        report = json.loads((tmp_path / "report.json").read_text(encoding="utf-8"))
        assert report["space"] == "fig04-interference"
        assert report["grid_points"] == 3
        assert report["simulated"] <= 3

    def test_unknown_axis_rejected(self, capsys):
        assert main(["explore", "fig04", "--grid", "bogus=1,2", "--no-cache"]) == 2
        assert "not one of" in capsys.readouterr().err

    def test_bad_axis_values_rejected(self, capsys):
        assert main(["explore", "fig04", "--grid", "qd=1:5", "--no-cache"]) == 2
        assert "bad --grid" in capsys.readouterr().err

    def test_non_explorable_experiment_rejected(self, capsys):
        assert main(["explore", "fig02", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "explore_space" in err and "fig04" in err

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["explore", "fig999"]) == 2


class TestCliCacheJournal:
    def test_journal_summary_and_compact(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "fig02", "--quick", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "journal", "--cache-dir", cache_dir, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["point_records"] > 0
        assert summary["sweep_runs"] >= 1
        # Recompute after pruning entries (prune keeps the journal,
        # clear would drop it): journal doubles up, compact dedupes.
        assert main(["cache", "prune", "--cache-dir", cache_dir, "--max-entries", "0"]) == 0
        assert main(["run", "fig02", "--quick", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "journal", "--cache-dir", cache_dir, "--compact", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["dropped_superseded"] == summary["point_records"]
        assert main(["cache", "journal", "--cache-dir", cache_dir, "--json"]) == 0
        after = json.loads(capsys.readouterr().out)
        assert after["point_records"] == summary["point_records"]
