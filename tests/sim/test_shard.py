"""Unit tests for the conservative sharded execution layer.

Exercises the window protocol on toy ping-pong shards (no rack stack):
plan/budget resolution, the lookahead contract at emission, canonical
message ordering, bounded/unbounded ``run_until`` semantics including
the collect-outboxes-at-entry path, and byte-identity between inline
and worker-process channels.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.sim import make_simulator
from repro.sim.shard import (
    EFFECTIVE_JOBS_ENV,
    SHARDS_ENV,
    ShardExecutor,
    ShardKernel,
    ShardMessage,
    ShardProtocolError,
    ShardWorkerError,
    _message_key,
    plan_shards,
    resolve_shards,
)

LOOKAHEAD = 1.0
HOP = 2.5  # strictly beyond the lookahead, as every real fabric hop is


class Bouncer:
    """Toy shard logic: log deliveries; bounce pings until payload hits 0."""

    def __init__(self, peer: int):
        self.peer = peer
        self.kernel = None
        self.log = []

    def handle(self, msg: ShardMessage) -> None:
        self.log.append((msg.kind, msg.due_us, msg.src, msg.payload))
        if msg.kind == "ping" and msg.payload > 0:
            self.kernel.emit(
                self.peer, "ping", self.kernel.sim.now + HOP, msg.payload - 1
            )


def build_bouncer_shard(spec):
    """Module-level factory so worker processes can build the toy shard."""
    sim = make_simulator(spec.get("backend"))
    bouncer = Bouncer(spec["peer"])
    kernel = ShardKernel(
        spec["shard_id"], sim, bouncer.handle, spec["lookahead_us"], probe=True
    )
    bouncer.kernel = kernel
    kernel.bouncer = bouncer  # keep reachable for inline assertions
    return kernel


def build_broken_shard(spec):
    raise RuntimeError("deliberate shard build failure")


def _toy_pair(mode: str, backend=None):
    """A two-shard ping-pong topology; shard 0 is always local."""
    executor = ShardExecutor(lookahead_us=LOOKAHEAD)
    spec0 = {"shard_id": 0, "peer": 1, "lookahead_us": LOOKAHEAD, "backend": backend}
    spec1 = {"shard_id": 1, "peer": 0, "lookahead_us": LOOKAHEAD, "backend": backend}
    executor.add_local(build_bouncer_shard(spec0))
    if mode == "processes":
        executor.add_process(build_bouncer_shard, spec1)
    else:
        executor.add_local(build_bouncer_shard(spec1))
    return executor


class TestResolveShards:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "8")
        assert resolve_shards(3) == 3

    def test_zero_means_unsharded(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        assert resolve_shards(0) is None
        assert resolve_shards(None) is None

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "4")
        assert resolve_shards(None) == 4
        monkeypatch.setenv(SHARDS_ENV, "0")
        assert resolve_shards(None) is None


class TestPlanShards:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(2, mode="threads")

    def test_topology_cap(self, monkeypatch):
        monkeypatch.delenv(EFFECTIVE_JOBS_ENV, raising=False)
        plan = plan_shards(8, mode="inline", max_shards=3)
        assert plan.shards == 3
        assert plan.requested == 8
        assert not plan.clamped

    def test_inline_mode_ignores_budget(self, monkeypatch):
        monkeypatch.setenv(EFFECTIVE_JOBS_ENV, "1")
        plan = plan_shards(4, mode="inline")
        assert plan == plan_shards(4, mode="inline")
        assert plan.shards == 4
        assert plan.mode == "inline"
        assert not plan.clamped

    def test_no_budget_headroom_falls_back_inline(self, monkeypatch):
        monkeypatch.setenv(EFFECTIVE_JOBS_ENV, "1")
        plan = plan_shards(4, mode="processes")
        assert plan.mode == "inline"
        assert plan.shards == 4  # topology still sharded, just not spawned
        assert plan.clamped

    def test_budget_clamps_process_fanout(self, monkeypatch):
        monkeypatch.setenv(EFFECTIVE_JOBS_ENV, "3")
        plan = plan_shards(4, mode="processes")
        assert plan.mode == "processes"
        assert plan.shards == 2  # this process + 2 workers = budget of 3
        assert plan.clamped

    def test_budget_with_headroom_does_not_clamp(self, monkeypatch):
        monkeypatch.setenv(EFFECTIVE_JOBS_ENV, "8")
        plan = plan_shards(2, mode="processes")
        assert plan.shards == 2
        assert not plan.clamped

    def test_clamp_bumps_counter(self, monkeypatch):
        monkeypatch.setenv(EFFECTIVE_JOBS_ENV, "2")
        with obs.capture() as session:
            plan_shards(4, mode="processes")
        assert session.registry.counter("sweep.shards_clamped").value == 1


class TestShardKernel:
    def test_emit_enforces_strict_lookahead(self):
        sim = make_simulator()
        kernel = ShardKernel(0, sim, lambda msg: None, LOOKAHEAD)
        with pytest.raises(ShardProtocolError):
            kernel.emit(1, "ping", LOOKAHEAD)  # due == now + L: not strict
        kernel.emit(1, "ping", LOOKAHEAD + 1e-9)
        assert len(kernel.outbox) == 1

    def test_emit_assigns_monotonic_seq(self):
        sim = make_simulator()
        kernel = ShardKernel(0, sim, lambda msg: None, LOOKAHEAD)
        kernel.emit(1, "a", 10.0)
        kernel.emit(1, "b", 5.0)
        seqs = [msg.seq for msg in kernel.outbox]
        assert seqs == [1, 2]

    def test_step_runs_handler_at_due_time(self):
        log = []
        sim = make_simulator()
        kernel = ShardKernel(0, sim, lambda msg: log.append((sim.now, msg.kind)), 1.0)
        inbound = [ShardMessage("ping", 0, 4.0, 0.0, 1, 1, None)]
        outbox, next_t, _fired, now = kernel.step(10.0, inbound)
        assert log == [(4.0, "ping")]
        assert outbox == []
        assert next_t is None
        assert now == 10.0


class TestMessageOrdering:
    def test_canonical_key(self):
        a = ShardMessage("x", 0, 5.0, 1.0, 2, 7, None)
        b = ShardMessage("x", 0, 5.0, 1.0, 1, 9, None)
        c = ShardMessage("x", 0, 4.0, 3.0, 9, 1, None)
        assert sorted([a, b, c], key=_message_key) == [c, b, a]

    def test_inbox_sorted_by_due_then_seq(self):
        executor = ShardExecutor(lookahead_us=LOOKAHEAD)
        log = []
        sim0 = make_simulator()
        executor.add_local(
            ShardKernel(0, sim0, lambda msg: log.append(msg.payload), LOOKAHEAD)
        )
        sim1 = make_simulator()
        sender = ShardKernel(1, sim1, lambda msg: None, LOOKAHEAD)
        executor.add_local(sender)
        sender.emit(0, "x", 10.0, "late")
        sender.emit(0, "x", 5.0, "early")
        sender.emit(0, "x", 10.0, "late-after")  # same due: seq breaks the tie
        executor.run()
        assert log == ["early", "late", "late-after"]


class TestExecutorWindows:
    def test_ping_pong_drains(self):
        executor = _toy_pair("inline")
        shard0 = executor.channels[0].kernel
        shard0.emit(1, "ping", HOP, 4)
        executor.run()
        report = executor.finish()
        # initial ping + 4 bounces, one window per hop
        assert report["messages"] == 5
        assert report["windows"] == 5
        logs = [executor.channels[i].kernel.bouncer.log for i in (0, 1)]
        assert [entry[3] for entry in logs[1]] == [4, 2, 0]
        assert [entry[3] for entry in logs[0]] == [3, 1]
        assert report["events_fired"] == 5

    def test_collects_outbox_emitted_between_runs(self):
        # Domain code emits while the local heap is empty; run_until must
        # see the pending send at entry or it would return immediately.
        executor = _toy_pair("inline")
        shard0 = executor.channels[0].kernel
        shard0.emit(1, "ping", HOP, 0)
        assert shard0.sim.next_event_time() is None
        executor.run()
        assert executor.channels[1].kernel.bouncer.log == [("ping", HOP, 0, 0)]

    def test_bounded_run_lands_every_clock_on_target(self):
        executor = _toy_pair("inline")
        shard0 = executor.channels[0].kernel
        shard0.emit(1, "ping", 100.0, 0)
        executor.run_until(20.0)
        assert executor.channels[0].kernel.sim.now == 20.0
        assert executor.channels[1].kernel.sim.now == 20.0
        # message still in flight, delivered by the next (unbounded) run
        assert executor.channels[1].kernel.bouncer.log == []
        executor.run()
        assert executor.channels[1].kernel.bouncer.log == [("ping", 100.0, 0, 0)]

    def test_bounded_run_is_resumable_past_target(self):
        executor = _toy_pair("inline")
        shard0 = executor.channels[0].kernel
        shard0.emit(1, "ping", HOP, 2)
        executor.run_until(HOP)  # exactly the first delivery
        assert executor.channels[1].kernel.bouncer.log == [("ping", HOP, 0, 2)]
        executor.run()
        assert len(executor.channels[0].kernel.bouncer.log) == 1
        assert executor.finish()["messages"] == 3

    def test_route_rejects_invalid_destination(self):
        executor = _toy_pair("inline")
        shard0 = executor.channels[0].kernel
        shard0.emit(7, "ping", HOP, 0)
        with pytest.raises(ShardProtocolError):
            executor.run()

    def test_route_rejects_self_send(self):
        executor = _toy_pair("inline")
        shard0 = executor.channels[0].kernel
        shard0.emit(0, "ping", HOP, 0)
        with pytest.raises(ShardProtocolError):
            executor.run()

    def test_add_local_validates_slot(self):
        executor = ShardExecutor(lookahead_us=LOOKAHEAD)
        sim = make_simulator()
        with pytest.raises(ValueError):
            executor.add_local(ShardKernel(3, sim, lambda msg: None, LOOKAHEAD))

    def test_nonpositive_lookahead_rejected(self):
        with pytest.raises(ValueError):
            ShardExecutor(lookahead_us=0.0)

    def test_register_metrics_exposes_per_shard_gauges(self):
        executor = _toy_pair("inline")
        executor.channels[0].kernel.emit(1, "ping", HOP, 2)
        executor.run()
        executor.finish()
        registry = obs.Registry()
        executor.register_metrics(registry)
        snap = registry.snapshot()
        assert snap["shard.shards"] == 2
        assert snap["shard.windows"] == executor.windows
        assert snap["shard.events.0"] + snap["shard.events.1"] == snap[
            "shard.events_fired"
        ]


class TestProcessChannels:
    def test_inline_and_process_reports_identical(self):
        reports = {}
        for mode in ("inline", "processes"):
            executor = _toy_pair(mode)
            executor.channels[0].kernel.emit(1, "ping", HOP, 6)
            executor.run()
            report = executor.finish()
            report.pop("barrier_stall_s")  # wall clock, machine-dependent
            reports[mode] = report
        assert reports["inline"] == reports["processes"]

    def test_worker_build_failure_surfaces(self):
        executor = ShardExecutor(lookahead_us=LOOKAHEAD)
        executor.add_local(
            ShardKernel(0, make_simulator(), lambda msg: None, LOOKAHEAD)
        )
        with pytest.raises(ShardWorkerError):
            executor.add_process(build_broken_shard, {})

    def test_finish_is_idempotent(self):
        executor = _toy_pair("processes")
        executor.channels[0].kernel.emit(1, "ping", HOP, 1)
        executor.run()
        first = executor.finish()
        second = executor.finish()
        assert first == second


class TestBackends:
    @pytest.mark.parametrize("backend", ["reference", "batch"])
    def test_next_event_time(self, backend):
        sim = make_simulator(backend)
        assert sim.next_event_time() is None
        sim.at_(7.5, lambda: None)
        sim.at_(3.25, lambda: None)
        assert sim.next_event_time() == 3.25
        sim.run()
        assert sim.next_event_time() is None

    @pytest.mark.parametrize("backend", ["reference", "batch"])
    def test_ping_pong_on_backend(self, backend):
        executor = _toy_pair("inline", backend=backend)
        executor.channels[0].kernel.emit(1, "ping", HOP, 3)
        executor.run()
        report = executor.finish()
        assert report["messages"] == 4
        assert report["windows"] == 4
