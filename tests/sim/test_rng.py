"""Tests for named, seeded RNG streams."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_different_names_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456789, "stream") < 2**64


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        rngs = RngRegistry(seed=7)
        assert rngs.stream("w0") is rngs.stream("w0")

    def test_streams_are_independent_of_creation_order(self):
        first = RngRegistry(seed=7)
        a_then_b = (first.stream("a").random(), first.stream("b").random())
        second = RngRegistry(seed=7)
        b_then_a = (second.stream("b").random(), second.stream("a").random())
        assert a_then_b[0] == b_then_a[1]
        assert a_then_b[1] == b_then_a[0]

    def test_same_seed_reproduces_draws(self):
        draws1 = [RngRegistry(seed=3).stream("x").random() for _ in range(1)]
        draws2 = [RngRegistry(seed=3).stream("x").random() for _ in range(1)]
        assert draws1 == draws2

    def test_different_seed_changes_draws(self):
        a = RngRegistry(seed=1).stream("x").random()
        b = RngRegistry(seed=2).stream("x").random()
        assert a != b

    def test_fork_is_independent(self):
        parent = RngRegistry(seed=5)
        child = parent.fork("child")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_fork_is_deterministic(self):
        a = RngRegistry(seed=5).fork("c").stream("x").random()
        b = RngRegistry(seed=5).fork("c").stream("x").random()
        assert a == b
