"""Unit tests for the batch-advance backend and the population API."""

from __future__ import annotations

import pytest

from repro.sim import SimulationError, Simulator, make_simulator
from repro.sim.engine import KERNEL_BACKEND_ENV

np = pytest.importorskip("numpy", reason="batch backend requires numpy")

from repro.sim.batch import (  # noqa: E402 - after importorskip
    _MIN_BULK_SEGMENT,
    _WINDOW,
    BatchSimulator,
)


# ----------------------------------------------------------------------
# Factory / backend selection
# ----------------------------------------------------------------------
class TestMakeSimulator:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert type(make_simulator()) is Simulator

    def test_explicit_batch(self):
        assert isinstance(make_simulator("batch"), BatchSimulator)

    def test_env_selects_batch(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "batch")
        assert isinstance(make_simulator(), BatchSimulator)

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "batch")
        assert type(make_simulator("reference")) is Simulator

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="reference"):
            make_simulator("turbo")


# ----------------------------------------------------------------------
# Reference-backend population (heap-backed)
# ----------------------------------------------------------------------
class TestReferencePopulation:
    def test_orders_with_heap_events(self):
        sim = Simulator()
        log = []
        pop = sim.population(lambda tag: log.append(("pop", sim.now, tag)))
        pop.add(2.0, "a")
        sim.at(1.0, lambda: log.append(("at", sim.now)))
        pop.add(1.0, "tie")  # later seq than the at(): fires second
        sim.run()
        assert log == [("at", 1.0), ("pop", 1.0, "tie"), ("pop", 2.0, "a")]

    def test_past_add_rejected(self):
        sim = Simulator()
        pop = sim.population(lambda: None)
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            pop.add(4.0)

    def test_bulk_population_delivers_singly(self):
        sim = Simulator()
        log = []
        pop = sim.population(
            lambda times, payloads: log.append((tuple(times), tuple(payloads))),
            bulk=True,
        )
        pop.add_many((3.0, 1.0), ("b", "a"))
        sim.run()
        assert log == [((1.0,), ("a",)), ((3.0,), ("b",))]

    def test_bulk_floor_contract_enforced(self):
        sim = Simulator()
        pop = sim.population(lambda times, payloads: None, bulk=True)
        pop.add_many((5.0,), ("x",))
        sim.run()
        with pytest.raises(SimulationError, match="floor"):
            pop.add(4.0, "y")


# ----------------------------------------------------------------------
# Batch backend mechanics
# ----------------------------------------------------------------------
def _fill(pop, times, payloads):
    pop.add_many(np.asarray(times, dtype=float), list(payloads))


class TestBatchSimulator:
    def test_pending_and_clock(self):
        sim = BatchSimulator()
        fired = []
        pop = sim.population(fired.append)
        for index in range(10):
            pop.add(float(index + 1), index)
        assert sim.pending == 10
        sim.run()
        assert fired == list(range(10))
        assert sim.pending == 0
        assert sim.now == 10.0

    def test_until_pauses_and_resumes(self):
        sim = BatchSimulator()
        fired = []
        pop = sim.population(fired.append)
        for index in range(100):
            pop.add(float(index), index)
        sim.run(until_us=49.5)
        assert fired == list(range(50))
        assert sim.now == 49.5
        sim.run()
        assert fired == list(range(100))

    def test_max_events_budget(self):
        sim = BatchSimulator()
        fired = []
        pop = sim.population(fired.append)
        for index in range(100):
            pop.add(float(index), index)
        sim.run(max_events=30)
        assert len(fired) == 30
        while sim.step():
            pass
        assert len(fired) == 100

    def test_small_backlog_spills_to_heap(self):
        sim = BatchSimulator()
        fired = []
        pop = sim.population(fired.append)
        count = _MIN_BULK_SEGMENT - 2
        for index in range(count):
            pop.add(float(index), index)
        sim.run()
        assert fired == list(range(count))
        # spilled backlogs never cut a window
        assert sim.batch_windows == 0

    def test_deep_backlog_uses_windows(self):
        sim = BatchSimulator()
        fired = []
        pop = sim.population(fired.append)
        count = _WINDOW + 100
        for index in range(count):
            pop.add(float(index), index)
        sim.run()
        assert fired == list(range(count))
        assert sim.batch_grand_sorts >= 1
        assert sim.batch_windows >= 2

    def test_undercut_counter_and_order(self):
        sim = BatchSimulator()
        log = []

        def complete(tag):
            log.append((sim.now, tag))
            if tag == "first":
                # Below the active window's ceiling: must be routed to
                # the heap and still fire in exact time order.
                pop.add(sim.now + 0.25, "undercut")

        pop = sim.population(complete)
        for index in range(_WINDOW):
            pop.add(float(index + 1), "first" if index == 0 else index)
        sim.run()
        assert log[0] == (1.0, "first")
        assert log[1] == (1.25, "undercut")
        assert sim.batch_undercuts >= 1

    def test_refold_merges_late_stagers(self):
        sim = BatchSimulator()
        log = []

        def timer():
            # Stages new population entries whose times land inside the
            # *next* window's span, forcing a refold at the next cut.
            for offset in range(70):
                pop.add(sim.now + 200.0 + offset * 0.5, "late")

        pop = sim.population(lambda tag: log.append((sim.now, tag)))
        for index in range(_WINDOW + 500):
            pop.add(float(index + 100), index)
        sim.at(50.0, timer)
        sim.run()
        times = [t for t, _ in log]
        assert times == sorted(times)

    def test_bulk_delivery_batches(self):
        sim = BatchSimulator()
        deliveries = []
        pop = sim.population(
            lambda times, payloads: deliveries.append(len(times)), bulk=True
        )
        _fill(pop, [float(i + 1) for i in range(500)], range(500))
        sim.run()
        assert sum(deliveries) == 500
        # actually batched: far fewer deliveries than entries
        assert len(deliveries) < 50

    def test_bulk_floor_violation_raises(self):
        sim = BatchSimulator()
        pop = sim.population(lambda times, payloads: None, bulk=True)
        _fill(pop, [float(i + 1) for i in range(200)], range(200))
        sim.run()
        assert pop.floor == 200.0
        with pytest.raises(SimulationError, match="FCFS"):
            pop.add_many(np.asarray([150.0]), ["late"])

    def test_bulk_and_scalar_pops_interleave(self):
        sim = BatchSimulator()
        log = []
        bulk = sim.population(
            lambda times, payloads: log.extend(
                ("bulk", float(t)) for t in times
            ),
            bulk=True,
        )
        scalar = sim.population(lambda tag: log.append(("scalar", sim.now)))
        _fill(bulk, [float(2 * i + 2) for i in range(300)], range(300))
        for index in range(300):
            scalar.add(float(2 * index + 1), index)
        sim.run()
        # every scalar completion fired between the right bulk ones
        positions = {}
        for position, (kind, time_us) in enumerate(log):
            positions[(kind, time_us)] = position
        for index in range(299):
            assert positions[("scalar", 2 * index + 1.0)] < positions[
                ("bulk", 2 * index + 2.0)
            ]

    def test_past_add_rejected(self):
        sim = BatchSimulator()
        pop = sim.population(lambda tag: None)
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            pop.add(4.0, "late")

    def test_add_many_length_mismatch(self):
        sim = BatchSimulator()
        pop = sim.population(lambda times, payloads: None, bulk=True)
        with pytest.raises(SimulationError, match="length"):
            pop.add_many(np.asarray([1.0, 2.0]), ["only-one"])

    def test_idle_fast_forward_counts(self):
        sim = BatchSimulator()
        pop = sim.population(lambda tag: None)
        for index in range(_WINDOW):
            pop.add(1000.0 + index, index)
        sim.run()
        assert sim.batch_idle_jumps >= 1
        assert sim.batch_idle_us >= 1000.0

    def test_register_metrics_gauges(self):
        from repro.obs.registry import Registry

        sim = BatchSimulator()
        registry = Registry()
        sim.register_metrics(registry)
        pop = sim.population(lambda tag: None)
        for index in range(10):
            pop.add(float(index), index)
        sim.run()
        snapshot = registry.snapshot()
        assert snapshot["kernel.batch_adds"] == 10

    def test_run_not_reentrant(self):
        sim = BatchSimulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(str(exc))

        sim.at(1.0, reenter)
        sim.run()
        assert errors and "reentrant" in errors[0]

    def test_probe_counts_bulk_fires(self):
        from repro.obs import KernelProbe

        sim = BatchSimulator()
        sim.probe = KernelProbe()
        pop = sim.population(lambda times, payloads: None, bulk=True, label="d")
        _fill(pop, [float(i + 1) for i in range(300)], range(300))
        sim.run(max_events=200)
        assert sim.probe.fired_total == 200
        sim.run()
        assert sim.probe.fired_total == 300
