"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.sim.engine import SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_callback_at_delay(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_at_runs_callback_at_absolute_time(self, sim):
        fired = []
        sim.at(12.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [12.5]

    def test_callback_args_are_passed(self, sim):
        got = []
        sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self, sim):
        order = []
        for name in "abcde":
            sim.schedule(7.0, order.append, name)
        sim.run()
        assert order == list("abcde")

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self, sim):
        sim.at(10.0, lambda: None)
        sim.run()
        assert sim.now == 10.0
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(2.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_pending_excludes_cancelled(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert keep is not drop


class TestRunBounds:
    def test_run_until_stops_clock_at_deadline(self, sim):
        sim.schedule(100.0, lambda: None)
        sim.run(until_us=50.0)
        assert sim.now == 50.0
        assert sim.pending == 1

    def test_event_exactly_at_deadline_fires(self, sim):
        fired = []
        sim.schedule(50.0, lambda: fired.append(1))
        sim.run(until_us=50.0)
        assert fired == [1]

    def test_run_advances_to_deadline_even_when_heap_empty(self, sim):
        sim.run(until_us=123.0)
        assert sim.now == 123.0

    def test_run_resumes_after_deadline(self, sim):
        fired = []
        sim.schedule(100.0, lambda: fired.append(sim.now))
        sim.run(until_us=50.0)
        sim.run(until_us=150.0)
        assert fired == [100.0]

    def test_max_events_bound(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_step_executes_one_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]


class TestProcesses:
    def test_process_sleeps(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield 10.0
            trace.append(sim.now)
            yield 5.0
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0, 10.0, 15.0]

    def test_process_waits_on_waiter(self, sim):
        trace = []
        waiter = sim.waiter()

        def proc():
            value = yield waiter
            trace.append((sim.now, value))

        sim.process(proc())
        sim.schedule(42.0, waiter.trigger, "done")
        sim.run()
        assert trace == [(42.0, "done")]

    def test_already_triggered_waiter_resumes_promptly(self, sim):
        waiter = sim.waiter()
        waiter.trigger("early")
        trace = []

        def proc():
            value = yield waiter
            trace.append(value)

        sim.process(proc())
        sim.run()
        assert trace == ["early"]

    def test_waiter_double_trigger_rejected(self, sim):
        waiter = sim.waiter()
        waiter.trigger()
        with pytest.raises(SimulationError):
            waiter.trigger()

    def test_process_stop_prevents_resumption(self, sim):
        trace = []

        def proc():
            yield 10.0
            trace.append("should not happen")

        process = sim.process(proc())
        process.stop()
        sim.run()
        assert trace == []
        assert not process.alive

    def test_process_finishes_naturally(self, sim):
        def proc():
            yield 1.0

        process = sim.process(proc())
        sim.run()
        assert not process.alive

    def test_process_rejects_bad_yield(self, sim):
        def proc():
            yield "nonsense"

        with pytest.raises(SimulationError):
            sim.process(proc())
            sim.run()


class TestDeterminism:
    def test_two_identical_runs_interleave_identically(self):
        def build():
            sim = Simulator()
            order = []
            for i in range(50):
                sim.schedule((i * 7) % 13 + 0.5, order.append, i)
            sim.run()
            return order

        assert build() == build()


class TestWaiterCombinators:
    def test_all_of_waits_for_everyone(self, sim):
        from repro.sim import all_of

        waiters = [sim.waiter() for _ in range(3)]
        got = []

        def proc():
            values = yield all_of(sim, waiters)
            got.append((sim.now, values))

        sim.process(proc())
        sim.schedule(10.0, waiters[0].trigger, "a")
        sim.schedule(30.0, waiters[2].trigger, "c")
        sim.schedule(20.0, waiters[1].trigger, "b")
        sim.run()
        assert got == [(30.0, ["a", "b", "c"])]

    def test_all_of_empty_is_immediate(self, sim):
        from repro.sim import all_of

        got = []

        def proc():
            values = yield all_of(sim, [])
            got.append(values)

        sim.process(proc())
        sim.run()
        assert got == [[]]

    def test_any_of_triggers_on_first(self, sim):
        from repro.sim import any_of

        waiters = [sim.waiter() for _ in range(3)]
        got = []

        def proc():
            winner = yield any_of(sim, waiters)
            got.append((sim.now, winner))

        sim.process(proc())
        sim.schedule(20.0, waiters[0].trigger, "slow")
        sim.schedule(5.0, waiters[1].trigger, "fast")
        sim.run()
        assert got == [(5.0, (1, "fast"))]

    def test_any_of_ignores_later_triggers(self, sim):
        from repro.sim import any_of

        waiters = [sim.waiter(), sim.waiter()]
        combined = any_of(sim, waiters)
        waiters[0].trigger("first")
        waiters[1].trigger("second")
        sim.run()
        assert combined.triggered

    def test_any_of_empty_rejected(self, sim):
        from repro.sim import any_of
        from repro.sim.engine import SimulationError as SimError

        with pytest.raises(SimError):
            any_of(sim, [])

    def test_all_of_with_pretriggered_waiter(self, sim):
        from repro.sim import all_of

        ready = sim.waiter()
        ready.trigger("early")
        pending = sim.waiter()
        got = []

        def proc():
            values = yield all_of(sim, [ready, pending])
            got.append(values)

        sim.process(proc())
        sim.schedule(7.0, pending.trigger, "late")
        sim.run()
        assert got == [["early", "late"]]

    def test_any_of_stops_loser_relays(self, sim):
        """Regression: losing relay processes used to stay parked on
        their waiters forever after the winner fired."""
        from repro.sim import any_of

        waiters = [sim.waiter() for _ in range(3)]
        combined = any_of(sim, waiters)
        sim.schedule(5.0, waiters[1].trigger, "fast")
        sim.run()
        assert combined.triggered
        # The losing waiters no longer hold a parked relay...
        assert waiters[0]._process is None
        assert waiters[2]._process is None
        # ...so a late trigger is inert rather than a double-resume.
        waiters[0].trigger("late")
        sim.run()
        assert combined._value == (1, "fast")

    def test_any_of_leaves_no_pending_events_after_winner(self, sim):
        from repro.sim import any_of

        waiters = [sim.waiter() for _ in range(4)]
        any_of(sim, waiters)
        sim.schedule(1.0, waiters[0].trigger, "win")
        sim.run()
        assert sim.pending == 0


class TestProcessWaiterDetach:
    def test_stop_detaches_parked_process(self, sim):
        waiter = sim.waiter()

        def proc():
            yield waiter

        process = sim.process(proc())
        assert waiter._process is process
        process.stop()
        assert waiter._process is None

    def test_trigger_after_stop_is_inert(self, sim):
        trace = []
        waiter = sim.waiter()

        def proc():
            value = yield waiter
            trace.append(value)

        process = sim.process(proc())
        process.stop()
        waiter.trigger("ghost")
        sim.run()
        assert trace == []

    def test_detach_ignores_foreign_process(self, sim):
        waiter = sim.waiter()

        def parked():
            yield waiter

        def unrelated():
            yield 100.0

        owner = sim.process(parked())
        other = sim.process(unrelated())
        waiter.detach(other)
        assert waiter._process is owner


class TestLazyDeletion:
    """Regression: interleaving Event.cancel() with bounded runs must
    keep the O(1) ``pending`` counter exactly equal to the heap's live
    ground truth (cancelled entries are removed lazily on pop or by
    compaction, and must be accounted exactly once)."""

    @staticmethod
    def _ground_truth(sim):
        return sum(1 for e in sim._heap if e[2] is not None)

    def test_cancel_interleaved_with_bounded_runs(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(40)]
        for deadline in (5.0, 10.0, 15.0, 20.0):
            # Cancel a mix of already-fired, in-window and future events.
            for index in (int(deadline) - 3, int(deadline) + 2, int(deadline) + 11):
                if 0 <= index < len(events):
                    events[index].cancel()
            sim.run(until_us=deadline)
            assert sim.pending == self._ground_truth(sim)
        sim.run()
        assert sim.pending == 0
        assert sim._dead == 0

    def test_cancel_from_inside_callback_keeps_pending_exact(self, sim):
        events = []

        def cancel_some():
            for event in events[10:20]:
                event.cancel()

        events.extend(sim.schedule(float(i + 5), lambda: None) for i in range(30))
        sim.schedule(1.0, cancel_some)
        sim.run(until_us=2.0)
        assert sim.pending == self._ground_truth(sim)
        sim.run()
        assert sim.pending == 0

    def test_double_cancel_during_run_decrements_once(self, sim):
        target = sim.schedule(50.0, lambda: None)
        sim.schedule(1.0, target.cancel)
        sim.schedule(2.0, target.cancel)
        sim.schedule(60.0, lambda: None)
        sim.run(until_us=10.0)
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_mass_cancellation_compacts_heap(self, sim):
        keep = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        drop = [sim.schedule(1000.0 + i, lambda: None) for i in range(2000)]
        for event in drop:
            event.cancel()
        # Compaction kicked in once the dead entries outnumbered the
        # live ones: far fewer than the 2000 cancelled entries linger,
        # and the residue stays below the compaction trigger.
        assert len(sim._heap) < len(keep) + 600
        assert sim._dead < 512
        assert sim.pending == 10
        assert sim.pending == self._ground_truth(sim)
        fired = []
        sim.schedule(0.5, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.pending == 0


class TestFreeList:
    def test_fired_events_are_recycled_when_unreferenced(self, sim):
        for i in range(50):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert len(sim._free) > 0
        recycled = sim._free[-1]
        again = sim.schedule(1.0, lambda: None)
        assert again is recycled

    def test_held_handles_are_never_recycled(self, sim):
        held = sim.schedule(1.0, lambda: None)
        sim.run()
        assert held not in sim._free
        # A late cancel through the held handle stays a no-op.
        held.cancel()
        assert sim.pending == 0

    def test_recycled_events_fire_correctly(self, sim):
        order = []
        for i in range(20):
            sim.schedule(float(i), order.append, i)
        sim.run()
        for i in range(20):
            sim.schedule(float(i), order.append, 100 + i)
        sim.run()
        assert order == list(range(20)) + [100 + i for i in range(20)]

    def test_cancel_of_reused_handle_targets_new_event(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert len(sim._free) == 1
        handle = sim.schedule(5.0, lambda: None)
        assert sim.pending == 1
        handle.cancel()
        assert sim.pending == 0


class TestReentrancy:
    def test_step_inside_callback_raises(self, sim):
        errors = []

        def reenter():
            try:
                sim.step()
            except SimulationError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, reenter)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert len(errors) == 1
        assert "reentrant" in errors[0]

    def test_step_inside_step_raises(self, sim):
        errors = []

        def reenter():
            try:
                sim.step()
            except SimulationError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, reenter)
        assert sim.step() is True
        assert len(errors) == 1

    def test_run_inside_callback_raises(self, sim):
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_step_usable_after_callback_error(self, sim):
        """The guard must reset even when a callback raises."""

        def boom():
            raise ValueError("bang")

        sim.schedule(1.0, boom)
        sim.schedule(2.0, lambda: None)
        with pytest.raises(ValueError):
            sim.step()
        assert sim.step() is True


class TestPendingCounter:
    def test_double_cancel_decrements_once(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        event.cancel()
        event.cancel()
        assert sim.pending == 1

    def test_cancel_after_fire_is_noop(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        event.cancel()
        assert sim.pending == 0

    def test_pending_matches_heap_ground_truth(self, sim):
        # Heap entries are [time, seq, fn, args, handle] lists; a fn of
        # None marks a dead (cancelled) entry awaiting lazy deletion.
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(20)]
        for event in events[::3]:
            event.cancel()
        ground_truth = sum(1 for e in sim._heap if e[2] is not None)
        assert sim.pending == ground_truth
        sim.run(max_events=5)
        ground_truth = sum(1 for e in sim._heap if e[2] is not None)
        assert sim.pending == ground_truth
        sim.run()
        assert sim.pending == 0
