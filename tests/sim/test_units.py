"""Tests for unit constants and conversions."""

from __future__ import annotations

import pytest

from repro.sim.units import GB, GBPS, KB, MB, MBPS, MS, SEC, US, bytes_per_us, mbps


class TestUnits:
    def test_size_ladder(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_time_ladder(self):
        assert US == 1.0
        assert MS == 1000.0
        assert SEC == 1_000_000.0

    def test_rate_constants(self):
        assert MBPS == pytest.approx(MB / SEC)
        assert GBPS == pytest.approx(GB / SEC)

    def test_mbps_round_trip(self):
        rate = mbps(1600.0)
        # 1600 MB/s moves 1600 MiB in one simulated second.
        assert rate * SEC == pytest.approx(1600 * MB)

    def test_bytes_per_us(self):
        assert bytes_per_us(100 * MB, SEC) == pytest.approx(100.0)
        assert bytes_per_us(0, SEC) == 0.0
        assert bytes_per_us(100, 0.0) == 0.0
