"""Property suite: the batch backend is byte-identical to the reference.

Randomized programs mix per-event population completions, plain heap
timers, cancellable events, and ``any_of`` relays, then run under both
kernel backends; the JSON-encoded journals of every fired event (and
the final clock/pending state) must match byte for byte.

Programs are drawn large enough to cross the batch backend's window
machinery (deep backlogs), small enough to exercise the small-backlog
heap spill, and closed-loop enough to hit undercuts (completions
registered below the active window's ceiling).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, any_of

BatchSimulator = pytest.importorskip(
    "repro.sim.batch", reason="batch backend requires numpy"
).BatchSimulator


#: Times come from a coarse grid so exact timestamp ties are common --
#: ties are where (time, seq) ordering bugs live.
def grid_times(max_steps=200):
    return st.integers(min_value=0, max_value=max_steps).map(lambda n: n * 0.5)


program_strategy = st.fixed_dictionaries(
    {
        "npops": st.integers(min_value=1, max_value=3),
        # (pop index, time, payload): payload > 0 re-adds closed-loop.
        "entries": st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                grid_times(),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=1,
            max_size=120,
        ),
        # Cancellable at() events: (time, tag).
        "at_events": st.lists(
            st.tuples(grid_times(), st.integers(min_value=0, max_value=99)),
            min_size=1,
            max_size=10,
        ),
        # (time, victim index): cancel at_events[victim] at `time`.
        "cancels": st.lists(
            st.tuples(grid_times(), st.integers(min_value=0, max_value=9)),
            max_size=4,
        ),
        # any_of relays racing two timed triggers.
        "relays": st.lists(
            st.tuples(grid_times(), grid_times()),
            max_size=3,
        ),
        # Self-rescheduling timers: (start, period, count).
        "timers": st.lists(
            st.tuples(
                grid_times(50),
                st.integers(min_value=1, max_value=8).map(lambda n: n * 0.5),
                st.integers(min_value=1, max_value=10),
            ),
            max_size=4,
        ),
    }
)


def run_program(make_sim, program) -> bytes:
    sim = make_sim()
    journal = []
    pops = []

    def make_callback(index):
        def complete(payload):
            journal.append(("pop", index, round(sim.now, 6), payload))
            if payload > 0:
                # Closed-loop re-add: lands inside the active window
                # often enough to exercise the undercut path.
                pops[index].add(sim.now + 0.5 * payload, payload - 1)

        return complete

    for index in range(program["npops"]):
        pops.append(sim.population(make_callback(index), label=f"p{index}"))
    for pop_index, time_us, payload in program["entries"]:
        pops[pop_index % program["npops"]].add(time_us, payload)

    events = []
    for time_us, tag in program["at_events"]:
        def fire(tag=tag):
            journal.append(("at", round(sim.now, 6), tag))

        events.append(sim.at(time_us, fire))

    for time_us, victim in program["cancels"]:
        def cancel(victim=victim):
            event = events[victim % len(events)]
            journal.append(("cancel", round(sim.now, 6), victim, event.cancelled))
            if not event.cancelled:
                event.cancel()

        sim.at(time_us, cancel)

    for first_us, second_us in program["relays"]:
        def relay(first_us=first_us, second_us=second_us):
            left = sim.waiter()
            right = sim.waiter()
            sim.at(first_us, left.trigger, "L")
            sim.at(second_us, right.trigger, "R")
            winner = yield any_of(sim, [left, right])
            journal.append(("relay", round(sim.now, 6), winner))

        sim.process(relay())

    for start_us, period_us, count in program["timers"]:
        def tick(remaining, period_us=period_us):
            journal.append(("tick", round(sim.now, 6), remaining))
            if remaining > 0:
                sim.schedule(period_us, tick, remaining - 1)

        sim.schedule(start_us, tick, count)

    sim.run()
    journal.append(("end", round(sim.now, 6), sim.pending))
    return json.dumps(journal).encode()


@settings(max_examples=40, deadline=None)
@given(program=program_strategy)
def test_backend_journals_identical(program):
    assert run_program(Simulator, program) == run_program(BatchSimulator, program)


@settings(max_examples=15, deadline=None)
@given(
    program=program_strategy,
    until=grid_times(100),
    budget=st.integers(min_value=1, max_value=50),
)
def test_backend_partial_runs_identical(program, until, budget):
    """run(until)/run(max_events) stop at the same point on both."""

    def run_partial(make_sim):
        sim = make_sim()
        pops = [
            sim.population(lambda p, i=i: None, label=f"p{i}")
            for i in range(program["npops"])
        ]
        for pop_index, time_us, payload in program["entries"]:
            pops[pop_index % program["npops"]].add(time_us, payload)
        sim.run(until_us=until)
        first = (sim.now, sim.pending)
        sim.run(max_events=budget)
        second = (sim.now, sim.pending)
        sim.run()
        return (first, second, sim.now, sim.pending)

    assert run_partial(Simulator) == run_partial(BatchSimulator)
