"""System-level integration tests across the whole stack."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import SCHEMES, Testbed, TestbedConfig
from repro.ssd.commands import IoOp
from repro.workloads import FioSpec


class TestConservation:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_submitted_io_completes(self, scheme):
        """No scheme loses requests: submitted == completed after drain."""
        testbed = Testbed(TestbedConfig(scheme=scheme, condition="clean"))
        workers = [
            testbed.add_worker(
                FioSpec(f"w{i}", io_pages=1 if i % 2 else 32,
                        queue_depth=8, read_ratio=0.5)
            )
            for i in range(4)
        ]
        for worker in workers:
            worker.start()
        testbed.sim.run(until_us=100_000.0)
        for worker in workers:
            worker.stop()
        testbed.sim.run()  # drain
        for worker in workers:
            assert worker.session.submitted == worker.session.completed
            assert worker.session.inflight == 0

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_random_mixes_complete_under_gimbal(self, seed):
        """Property: arbitrary worker mixes drain cleanly under Gimbal."""
        rng = random.Random(seed)
        testbed = Testbed(TestbedConfig(scheme="gimbal", condition="clean", seed=seed))
        for index in range(rng.randint(1, 5)):
            testbed.add_worker(
                FioSpec(
                    f"w{index}",
                    io_pages=rng.choice([1, 8, 32]),
                    queue_depth=rng.randint(1, 16),
                    read_ratio=rng.choice([0.0, 0.5, 1.0]),
                    pattern=rng.choice(["random", "sequential"]),
                )
            )
        for worker in testbed.workers:
            worker.start()
        testbed.sim.run(until_us=50_000.0)
        for worker in testbed.workers:
            worker.stop()
        testbed.sim.run()
        for worker in testbed.workers:
            assert worker.session.inflight == 0
            assert worker.session.submitted == worker.session.completed


class TestDeterminism:
    def test_same_seed_same_results(self):
        def run_once():
            testbed = Testbed(TestbedConfig(scheme="gimbal", condition="fragmented", seed=11))
            for index in range(3):
                testbed.add_worker(
                    FioSpec(f"w{index}", io_pages=1, queue_depth=16, read_ratio=0.7)
                )
            results = testbed.run(warmup_us=20_000, measure_us=100_000)
            return [
                (w["bandwidth_mbps"], w["iops"], w["read_latency"]["mean"])
                for w in results["workers"]
            ]

        assert run_once() == run_once()

    def test_different_seed_changes_results(self):
        def run_once(seed):
            testbed = Testbed(TestbedConfig(scheme="vanilla", condition="clean", seed=seed))
            testbed.add_worker(FioSpec("w0", io_pages=1, queue_depth=8, read_ratio=0.5))
            results = testbed.run(warmup_us=10_000, measure_us=50_000)
            return results["workers"][0]["read_latency"]["mean"]

        assert run_once(1) != run_once(2)


class TestPriorityTagging:
    def test_high_priority_reads_see_lower_latency_under_gimbal(self):
        """Section 3.5's per-tenant priority queues: a tenant's tagged
        latency-sensitive IOs overtake its own bulk traffic."""
        testbed = Testbed(TestbedConfig(scheme="gimbal", condition="clean"))
        session = testbed.initiator("client").connect(
            "t0", testbed.target, "ssd0",
            policy=testbed._client_policy(), queue_depth=256,
        )
        latencies = {0: [], 3: []}
        state = {"issued": 0}

        def issue(priority):
            def on_complete(request):
                latencies[priority].append(request.e2e_latency_us)
                if testbed.sim.now < 400_000.0:
                    issue(priority)

            session.submit(IoOp.READ, state["issued"] % 4096, 32,
                           priority=priority, on_complete=on_complete)
            state["issued"] += 1

        # A deep bulk stream at priority 0, a thin probe at priority 3.
        for _ in range(24):
            issue(0)
        for _ in range(2):
            issue(3)
        testbed.sim.run(until_us=500_000.0)
        assert latencies[3], "no high-priority completions"
        mean = lambda values: sum(values) / len(values)
        assert mean(latencies[3]) < mean(latencies[0])


class TestLoadSteering:
    def test_reads_avoid_an_overloaded_replica(self):
        """Failure-injection-flavoured check: when one SSD of a replica
        pair is hammered by an external tenant, credit-driven steering
        sends most reads to the healthy replica."""
        from repro.harness.kvcluster import KvCluster, KvClusterConfig

        cluster = KvCluster(
            KvClusterConfig(scheme="gimbal", condition="clean", num_jbofs=1, ssds_per_jbof=2)
        )
        runner = cluster.add_instance("db0", "C", record_count=512, concurrency=4)
        cluster.load_all()
        # Hammer ssd0 with an aggressive external tenant.
        from repro.fabric import NvmeOfInitiator, UnlimitedClientPolicy

        bully = NvmeOfInitiator(cluster.sim, cluster.network, "bully")
        bully_session = bully.connect(
            "bully", cluster.targets[0], "ssd0", policy=UnlimitedClientPolicy()
        )
        stop_at = cluster.sim.now + 400_000.0
        rng = random.Random(0)

        def hammer(request=None):
            if cluster.sim.now < stop_at:
                bully_session.submit(
                    IoOp.WRITE, rng.randrange(40_000), 32, on_complete=hammer
                )

        for _ in range(64):
            hammer()
        runner.start()
        cluster.sim.run(until_us=stop_at)
        runner.stop()
        store = runner.tree.store
        total = store.reads_to_primary + store.reads_to_shadow
        assert total > 100
        # Steering happened at all (both replicas used, not just primary).
        assert store.reads_to_shadow > 0
