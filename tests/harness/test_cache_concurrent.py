"""Cache safety under concurrent writers sharing one directory.

Several worker processes run the same sweep against the same cache
directory at once -- the ``--jobs N`` / parallel-CI shape.  Because
entries are written to a unique temp file and published with
``os.replace``, the races must produce exactly one valid entry per
point: no torn JSON, no duplicates, no leftover temp files.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.harness.cache import ResultCache
from repro.harness.parallel import SweepPoint, run_sweep

N_POINTS = 6
N_WORKERS = 4
ROUNDS_PER_WORKER = 5


def racy_point(x, worker=None):
    # ``worker`` is deliberately NOT part of the kwargs (all workers
    # share point identities) -- see _points().
    return {"x": x, "squared": x * x}


def _points():
    return [
        SweepPoint(index=i, label=f"x={i}", fn=racy_point, kwargs={"x": i})
        for i in range(N_POINTS)
    ]


def _worker(cache_dir: str) -> list:
    cache = ResultCache(cache_dir)
    results = None
    for _ in range(ROUNDS_PER_WORKER):
        results = run_sweep(_points(), cache=cache, name="race")
    return results


def test_concurrent_workers_produce_no_torn_or_duplicate_entries(tmp_path):
    cache_dir = tmp_path / "shared-cache"
    with ProcessPoolExecutor(max_workers=N_WORKERS) as pool:
        futures = [pool.submit(_worker, str(cache_dir)) for _ in range(N_WORKERS)]
        all_results = [future.result() for future in futures]

    expected = run_sweep(_points(), cache=False)
    for results in all_results:
        assert results == expected

    # Exactly one entry per point, every one valid JSON with a matching
    # fingerprint, and no temp-file debris from the replace dance.
    cache = ResultCache(cache_dir)
    entries = cache.entries()
    assert len(entries) == N_POINTS
    fingerprints = {entry["fingerprint"] for entry in entries}
    assert len(fingerprints) == N_POINTS
    for entry in entries:
        payload = json.loads(Path(entry["path"]).read_text(encoding="utf-8"))
        assert payload["fingerprint"] == Path(entry["path"]).stem
        assert payload["result"]["squared"] == payload["result"]["x"] ** 2
    leftovers = [p for p in cache_dir.iterdir() if ".tmp-" in p.name]
    assert leftovers == []

    # A fresh reader hits every entry.
    for point in _points():
        hit, value = cache.lookup(point)
        assert hit and value == {"x": point.kwargs["x"], "squared": point.kwargs["x"] ** 2}


def test_interleaved_reader_never_sees_torn_entries(tmp_path):
    """Lookups racing live writers either miss cleanly or return a
    fully valid result -- never a partial file."""
    cache_dir = tmp_path / "shared-cache"
    reader = ResultCache(cache_dir)
    with ProcessPoolExecutor(max_workers=N_WORKERS) as pool:
        futures = [pool.submit(_worker, str(cache_dir)) for _ in range(N_WORKERS)]
        # Poll lookups while the writers are in flight.
        while not all(future.done() for future in futures):
            for point in _points():
                hit, value = reader.lookup(point)
                if hit:
                    assert value == {
                        "x": point.kwargs["x"],
                        "squared": point.kwargs["x"] ** 2,
                    }
        for future in futures:
            future.result()
