"""Tests for the content-addressed sweep-point result cache."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import obs
from repro.harness.cache import (
    CacheStats,
    ResultCache,
    Uncacheable,
    canonical_value,
    code_fingerprint,
    configure,
    point_fingerprint,
    resolve_cache,
)
from repro.harness.parallel import Sweep, SweepPoint, run_sweep

CALLS = []


def point_fn(x, seed=0):
    """Module-level point function (cacheable by reference)."""
    CALLS.append(("point_fn", x, seed))
    return {"x": x, "seed": seed, "value": x * 2.5}


def tuple_point(shape=(4, 8)):
    CALLS.append(("tuple_point", shape))
    return {"shape": list(shape)}


def object_result_point(x):
    CALLS.append(("object_result_point", x))
    return object()  # not JSON-serialisable


def slow_point(x):
    CALLS.append(("slow_point", x))
    time.sleep(0.01)
    return {"x": x}


@pytest.fixture(autouse=True)
def _reset():
    CALLS.clear()
    configure(False)
    yield
    configure(False)


def make_point(fn, index=0, label="p", **kwargs):
    return SweepPoint(index=index, label=label, fn=fn, kwargs=kwargs)


class TestCanonicalisation:
    def test_tuples_become_lists(self):
        assert canonical_value((1, 2, (3,))) == [1, 2, [3]]

    def test_dict_keys_sorted(self):
        assert list(canonical_value({"b": 1, "a": 2})) == ["a", "b"]

    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert canonical_value(value) == value

    def test_objects_rejected(self):
        with pytest.raises(Uncacheable):
            canonical_value(object())
        with pytest.raises(Uncacheable):
            canonical_value({1: "non-string key"})


class TestFingerprints:
    def test_stable_across_calls(self):
        a = point_fingerprint(point_fn, {"x": 1, "seed": 7})
        b = point_fingerprint(point_fn, {"x": 1, "seed": 7})
        assert a[0] == b[0]

    def test_kwargs_change_key(self):
        a, _, _ = point_fingerprint(point_fn, {"x": 1, "seed": 7})
        b, _, _ = point_fingerprint(point_fn, {"x": 2, "seed": 7})
        c, _, _ = point_fingerprint(point_fn, {"x": 1, "seed": 8})
        assert len({a, b, c}) == 3

    def test_schema_version_changes_key(self):
        a, _, _ = point_fingerprint(point_fn, {"x": 1}, schema_version=1)
        b, _, _ = point_fingerprint(point_fn, {"x": 1}, schema_version=2)
        assert a != b

    def test_lambdas_are_uncacheable(self):
        with pytest.raises(Uncacheable):
            point_fingerprint(lambda x: x, {"x": 1})

    def test_code_fingerprint_covers_repro_closure(self):
        from repro.harness.experiments import fig02_unloaded_latency as fig02
        from repro.harness.cache import transitive_sources

        # The driver's closure reaches the simulation core: editing the
        # SSD timing model must invalidate figure sweeps.
        sources = transitive_sources(fig02._point.__module__, roots={"repro"})
        assert "repro.ssd.device" in sources
        assert "repro.sim.engine" in sources
        # And a function outside that closure fingerprints differently.
        assert code_fingerprint(fig02._point) != code_fingerprint(point_fn)


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        point = make_point(point_fn, x=3, seed=1)
        hit, _ = cache.lookup(point)
        assert not hit
        stored = cache.store(point, point_fn(**point.kwargs), elapsed_s=0.5)
        hit, value = cache.lookup(point)
        assert hit
        assert value == stored == {"x": 3, "seed": 1, "value": 7.5}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1
        assert cache.stats.seconds_saved == pytest.approx(0.5)

    def test_store_round_trips_tuples_like_json(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        point = make_point(tuple_point, shape=(4, 8))
        stored = cache.store(point, {"pair": (1, 2)}, elapsed_s=0.0)
        assert stored == {"pair": [1, 2]}
        hit, value = cache.lookup(point)
        assert hit and value == stored

    def test_unserialisable_result_bypasses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        point = make_point(object_result_point, x=1)
        result = object()
        assert cache.store(point, result, elapsed_s=0.0) is result
        assert cache.stats.uncacheable == 1
        assert cache.entries() == []

    def test_uncacheable_kwargs_bypass(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        point = make_point(point_fn, x=object())
        hit, _ = cache.lookup(point)
        assert not hit
        assert cache.stats.uncacheable == 1
        assert cache.stats.misses == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        point = make_point(point_fn, x=1, seed=0)
        cache.store(point, point_fn(1), elapsed_s=0.0)
        [entry] = cache.entries()
        with open(entry["path"], "w", encoding="utf-8") as handle:
            handle.write("{ torn")
        hit, _ = cache.lookup(point)
        assert not hit

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for x in range(3):
            point = make_point(point_fn, index=x, x=x)
            cache.store(point, point_fn(x), elapsed_s=0.0)
        assert cache.clear() == 3
        assert cache.entries() == []


class TestPrune:
    def _filled(self, tmp_path, count=4):
        cache = ResultCache(tmp_path / "cache")
        points = []
        for x in range(count):
            point = make_point(point_fn, index=x, x=x)
            cache.store(point, point_fn(x), elapsed_s=0.0)
            points.append(point)
        # Stage strictly increasing mtimes: entry 0 is the LRU victim.
        base = time.time() - 1000
        for offset, point in enumerate(points):
            fingerprint, _, _ = point_fingerprint(point.fn, point.kwargs)
            path = cache._entry_path(fingerprint)
            stamp = base + offset
            os.utime(path, (stamp, stamp))
        return cache, points

    def test_prune_evicts_lru_first(self, tmp_path):
        cache, points = self._filled(tmp_path)
        removed = cache.prune(max_entries=2)
        assert removed == 2
        # The two oldest (x=0, x=1) are gone, the newest remain.
        assert not cache.lookup(points[0])[0]
        assert not cache.lookup(points[1])[0]
        assert cache.lookup(points[2])[0]
        assert cache.lookup(points[3])[0]

    def test_hit_refreshes_lru_position(self, tmp_path):
        cache, points = self._filled(tmp_path)
        assert cache.lookup(points[0])[0]  # refreshes mtime of the oldest
        removed = cache.prune(max_entries=2)
        assert removed == 2
        assert cache.lookup(points[0])[0]  # survived thanks to the hit
        assert not cache.lookup(points[1])[0]

    def test_prune_by_bytes(self, tmp_path):
        cache, _ = self._filled(tmp_path)
        # Entry sizes differ by a byte or two (the "saved_at" float's
        # JSON width varies), so budget exactly the two newest entries
        # rather than assuming uniform sizes.
        by_age = sorted(cache.entries(), key=lambda entry: entry["mtime"])
        budget = sum(entry["size_bytes"] for entry in by_age[2:])
        removed = cache.prune(max_bytes=budget)
        assert removed == 2
        assert len(cache.entries()) == 2


class TestRunSweepIntegration:
    def _points(self, n=4):
        return [
            SweepPoint(index=i, label=f"x={i}", fn=point_fn, kwargs={"x": i, "seed": i})
            for i in range(n)
        ]

    def test_warm_run_skips_execution(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(self._points(), cache=cache, name="t")
        executed_cold = len(CALLS)
        warm = run_sweep(self._points(), cache=cache, name="t")
        assert warm == cold
        assert len(CALLS) == executed_cold  # nothing re-executed
        assert cache.stats.hits == 4

    def test_mixed_run_merges_in_point_order(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(self._points(2), cache=cache, name="t")
        # Two cached points plus two fresh ones, interleaved by index.
        mixed = run_sweep(self._points(4), cache=cache, name="t")
        assert [row["x"] for row in mixed] == [0, 1, 2, 3]
        uncached = run_sweep(self._points(4), cache=False)
        assert json.dumps(mixed, sort_keys=True) == json.dumps(uncached, sort_keys=True)

    def test_cache_false_disables(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(self._points(), cache=cache, name="t")
        before = len(CALLS)
        run_sweep(self._points(), cache=False)
        assert len(CALLS) == before + 4

    def test_journal_records_runs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep_points = self._points(3)
        run_sweep(sweep_points, cache=cache, name="alpha")
        run_sweep(sweep_points, cache=cache, name="alpha")
        journal = [record for record in cache.read_journal() if "sweep" in record]
        assert [record["sweep"] for record in journal] == ["alpha", "alpha"]
        assert journal[0]["misses"] == 3 and journal[0]["hits"] == 0
        assert journal[1]["hits"] == 3 and journal[1]["misses"] == 0
        assert journal[1]["seconds_saved"] >= 0.0
        # Each computed point also journals a training record; cache
        # hits on the second sweep do not re-journal.
        points = cache.point_records()
        assert len(points) == 3
        assert all(record["type"] == "point" for record in points)
        assert all("outputs" in record and "elapsed_s" in record for record in points)

    def test_sweep_run_accepts_cache(self, tmp_path):
        sweep = Sweep("mini")
        for x in (1, 2):
            sweep.point(point_fn, label=f"x={x}", x=x, seed=sweep.seed_for(f"x={x}"))
        first = sweep.run(cache=tmp_path / "cache")
        second = sweep.run(cache=tmp_path / "cache")
        assert first == second

    def test_ambient_configure(self, tmp_path):
        configure(tmp_path / "ambient")
        try:
            run_sweep(self._points(2), name="amb")  # cache=None -> ambient
            before = len(CALLS)
            run_sweep(self._points(2), name="amb")
            assert len(CALLS) == before
        finally:
            configure(False)

    def test_env_toggle(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert resolve_cache(None) is not None
        run_sweep(self._points(2), name="env")
        before = len(CALLS)
        run_sweep(self._points(2), name="env")
        assert len(CALLS) == before
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert resolve_cache(None) is None


class TestObsIntegration:
    def test_counters_and_trace_event(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        points = [
            SweepPoint(index=i, label=f"x={i}", fn=point_fn, kwargs={"x": i})
            for i in range(2)
        ]
        with obs.capture(trace=True) as session:
            run_sweep(points, cache=cache, name="obs-sweep")
            run_sweep(points, cache=cache, name="obs-sweep")
        snapshot = session.registry.snapshot()
        assert snapshot["cache.misses"] == 2
        assert snapshot["cache.hits"] == 2
        assert snapshot["cache.writes"] == 2
        events = session.tracer.of_type("cache")
        assert len(events) == 2
        assert events[0]["sweep"] == "obs-sweep"
        assert events[1]["hits"] == 2

    def test_register_metrics_gauges(self, tmp_path):
        from repro.obs.registry import Registry

        cache = ResultCache(tmp_path / "cache")
        registry = Registry()
        cache.register_metrics(registry)
        point = make_point(point_fn, x=1)
        cache.store(point, point_fn(1), elapsed_s=0.25)
        cache.lookup(point)
        snapshot = registry.snapshot()
        assert snapshot["cache.writes"] == 1
        assert snapshot["cache.hits"] == 1
        assert snapshot["cache.seconds_saved"] == pytest.approx(0.25)


class TestCacheStats:
    def test_delta_since(self):
        stats = CacheStats()
        before = stats.snapshot()
        stats.hits += 3
        stats.seconds_saved += 1.5
        delta = stats.delta_since(before)
        assert delta["hits"] == 3
        assert delta["seconds_saved"] == pytest.approx(1.5)
        assert delta["misses"] == 0


class TestCompactJournal:
    def _fill(self, cache, n=3):
        points = [make_point(point_fn, index=i, label=f"x={i}", x=i) for i in range(n)]
        run_sweep(points, cache=cache, name="fill")

    def test_superseded_points_dropped(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._fill(cache)
        # Recomputing after pruning appends duplicate (fn, kwargs)
        # records; only the newest of each pair must survive.
        cache.prune(max_entries=0)
        self._fill(cache)
        assert len(cache.point_records()) == 6
        stats = cache.compact_journal()
        assert stats["dropped_superseded"] == 3
        assert len(cache.point_records()) == 3

    def test_sweep_records_survive(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._fill(cache)
        sweeps_before = [r for r in cache.read_journal() if "sweep" in r]
        cache.compact_journal()
        sweeps_after = [r for r in cache.read_journal() if "sweep" in r]
        assert sweeps_after == sweeps_before

    def test_max_records_caps_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._fill(cache, n=5)
        stats = cache.compact_journal(max_records=2)
        assert stats["dropped_over_cap"] > 0
        records = cache.read_journal()
        assert len(records) == 2
        # The newest point records are the survivors.
        kept = [r["kwargs"]["x"] for r in records if r.get("type") == "point"]
        assert kept == sorted(kept) and kept[-1] == 4

    def test_stats_accounting(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._fill(cache, n=4)
        before = len(cache.read_journal())
        stats = cache.compact_journal()
        assert stats["records_before"] == before
        assert stats["records_kept"] == before - stats["dropped_superseded"] - stats["dropped_over_cap"]

    def test_missing_journal_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        stats = cache.compact_journal()
        assert stats == {
            "records_before": 0,
            "records_kept": 0,
            "dropped_superseded": 0,
            "dropped_over_cap": 0,
        }
        assert not (cache.root / "journal.jsonl").exists()

    def test_corrupt_lines_removed_by_rewrite(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._fill(cache, n=2)
        journal = cache.root / "journal.jsonl"
        journal.write_text(
            journal.read_text(encoding="utf-8") + "{torn line\n", encoding="utf-8"
        )
        cache.compact_journal()
        for line in journal.read_text(encoding="utf-8").splitlines():
            json.loads(line)
