"""Unit tests for the surrogate models over the cache journal."""

from __future__ import annotations

import math
import random

import pytest

from repro.harness import surrogate as surrogate_mod
from repro.harness.cache import ResultCache
from repro.harness.parallel import SweepPoint, run_sweep
from repro.harness.surrogate import (
    FLATTEN_LIMIT,
    FeatureCodec,
    KnnSurrogate,
    SurrogateSet,
    flatten_numeric,
    have_numpy,
    journal_records,
    make_surrogate,
)
from tests.harness.fake_experiments import _calc


# ----------------------------------------------------------------------
# flatten_numeric
# ----------------------------------------------------------------------
class TestFlattenNumeric:
    def test_flattens_nested_paths(self):
        flat = flatten_numeric({"a": 1, "b": {"c": 2.5, "d": [3, 4]}})
        assert flat == {"a": 1.0, "b.c": 2.5, "b.d.0": 3.0, "b.d.1": 4.0}

    def test_skips_non_numeric_and_non_finite(self):
        flat = flatten_numeric(
            {"s": "text", "nan": float("nan"), "inf": float("inf"), "ok": 7,
             "flag": True}
        )
        assert flat == {"ok": 7.0}

    def test_caps_path_count(self):
        flat = flatten_numeric({f"k{i:04d}": i for i in range(FLATTEN_LIMIT * 2)})
        assert len(flat) == FLATTEN_LIMIT
        # Lexicographically first paths are the ones kept.
        assert "k0000" in flat and f"k{FLATTEN_LIMIT * 2 - 1:04d}" not in flat

    def test_scalar_value_keeps_empty_path(self):
        assert flatten_numeric(3.5) == {"": 3.5}
        assert flatten_numeric(3.5, prefix="value") == {"value": 3.5}


# ----------------------------------------------------------------------
# FeatureCodec
# ----------------------------------------------------------------------
class TestFeatureCodec:
    def test_numeric_and_categorical_encoding(self):
        records = [
            {"x": 1.0, "mode": "a"},
            {"x": 3.0, "mode": "b"},
        ]
        codec = FeatureCodec.from_records(records)
        va = codec.encode({"x": 1.0, "mode": "a"})
        vb = codec.encode({"x": 3.0, "mode": "b"})
        assert va != vb and len(va) == len(vb)

    def test_unseen_category_encodes_to_zeros(self):
        codec = FeatureCodec.from_records([{"mode": "a"}, {"mode": "b"}])
        unseen = codec.encode({"mode": "zz"})
        assert all(value == 0.0 for value in unseen)

    def test_missing_numeric_key_uses_mean(self):
        codec = FeatureCodec.from_records([{"x": 2.0}, {"x": 6.0}])
        assert codec.encode({})[0] == pytest.approx(4.0)

    def test_bool_is_categorical_not_numeric(self):
        codec = FeatureCodec.from_records([{"flag": True}, {"flag": False}])
        assert codec.numeric == []
        assert codec.encode({"flag": True}) != codec.encode({"flag": False})


# ----------------------------------------------------------------------
# Model quality + determinism
# ----------------------------------------------------------------------
def _make_records(n=64, seed=0):
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        x = rng.uniform(0, 10)
        y = rng.uniform(0, 10)
        records.append(({"x": x, "y": y}, {"out": 2.0 * x + 0.5 * y}))
    return records


@pytest.mark.parametrize(
    "backend",
    ["tree", "knn"] if have_numpy() else ["knn"],
)
class TestSurrogateQuality:
    def test_interpolates_smooth_function(self, backend):
        surrogate = SurrogateSet.fit(_make_records(), ("out",), seed=7, backend=backend)
        queries = [{"x": 2.5, "y": 5.0}, {"x": 7.5, "y": 1.0}]
        means, _ = surrogate.predict(queries)["out"]
        for mean, query in zip(means, queries):
            truth = 2.0 * query["x"] + 0.5 * query["y"]
            assert abs(mean - truth) < 2.5

    def test_deterministic_bit_equal(self, backend):
        a = SurrogateSet.fit(_make_records(), ("out",), seed=7, backend=backend)
        b = SurrogateSet.fit(_make_records(), ("out",), seed=7, backend=backend)
        grid = [{"x": float(x), "y": float(y)} for x in range(11) for y in range(11)]
        mean_a, std_a = a.predict(grid)["out"]
        mean_b, std_b = b.predict(grid)["out"]
        assert list(mean_a) == list(mean_b)
        assert list(std_a) == list(std_b)

    def test_uncertainty_non_negative(self, backend):
        surrogate = SurrogateSet.fit(_make_records(16), ("out",), seed=1, backend=backend)
        _, stds = surrogate.predict([{"x": 5.0, "y": 5.0}])["out"]
        assert stds[0] >= 0.0

    def test_seed_changes_tree_but_not_contract(self, backend):
        a = SurrogateSet.fit(_make_records(), ("out",), seed=1, backend=backend)
        b = SurrogateSet.fit(_make_records(), ("out",), seed=2, backend=backend)
        means_a, _ = a.predict([{"x": 3.3, "y": 6.1}])["out"]
        means_b, _ = b.predict([{"x": 3.3, "y": 6.1}])["out"]
        assert math.isfinite(means_a[0]) and math.isfinite(means_b[0])


class TestKnnSpecifics:
    def test_exact_match_has_zero_uncertainty(self):
        records = [({"x": float(i)}, {"out": float(i * i)}) for i in range(8)]
        surrogate = SurrogateSet.fit(records, ("out",), seed=0, backend="knn")
        means, stds = surrogate.predict([{"x": 3.0}])["out"]
        assert means[0] == pytest.approx(9.0)
        assert stds[0] == 0.0

    def test_knn_is_pure_python(self):
        model = KnnSurrogate(seed=0)
        model.fit([[0.0], [1.0], [2.0]], [0.0, 1.0, 2.0])
        means, _ = model.predict([[0.5]])
        assert 0.0 < means[0] < 1.0


# ----------------------------------------------------------------------
# Backend selection / numpy fallback
# ----------------------------------------------------------------------
class TestBackendFallback:
    def test_auto_prefers_tree_with_numpy(self):
        if not have_numpy():
            pytest.skip("numpy not installed")
        assert make_surrogate(seed=0, backend="auto").backend == "tree"

    def test_auto_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.setattr(surrogate_mod, "_HAVE_NUMPY", False)
        model = make_surrogate(seed=0, backend="auto")
        assert model.backend == "knn"
        # The fallback is a fully working model, not a stub.
        records = [({"x": float(i)}, {"out": 3.0 * i}) for i in range(10)]
        surrogate = SurrogateSet.fit(records, ("out",), seed=0, backend="auto")
        assert surrogate.backend == "knn"
        means, _ = surrogate.predict([{"x": 4.5}])["out"]
        assert abs(means[0] - 13.5) < 3.0

    def test_forced_tree_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(surrogate_mod, "_HAVE_NUMPY", False)
        with pytest.raises(RuntimeError):
            make_surrogate(seed=0, backend="tree")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_surrogate(seed=0, backend="mlp")


# ----------------------------------------------------------------------
# Journal plumbing
# ----------------------------------------------------------------------
def _sweep_points(n=4):
    return [
        SweepPoint(index=i, label=f"value={i}", fn=_calc, kwargs={"value": i, "seed": 1})
        for i in range(n)
    ]


class TestJournalRecords:
    def test_round_trip_through_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(_sweep_points(), cache=cache, name="t")
        records = journal_records(cache)
        assert len(records) == 4
        sample = records[0]
        assert sample["kwargs"]["value"] in (0, 1, 2, 3)
        assert "value" in sample["outputs"] and "elapsed_s" in sample

    def test_fn_and_code_fingerprint_filters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(_sweep_points(), cache=cache, name="t")
        records = journal_records(cache)
        fn = records[0]["fn"]
        code_fp = records[0]["code_fingerprint"]
        assert len(journal_records(cache, fn=fn)) == 4
        assert journal_records(cache, fn="nope:nope") == []
        assert len(journal_records(cache, code_fingerprint=code_fp)) == 4
        assert journal_records(cache, code_fingerprint="stale") == []

    def test_max_records_keeps_newest(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(_sweep_points(6), cache=cache, name="t")
        records = journal_records(cache, max_records=2)
        assert len(records) == 2
        assert [r["kwargs"]["value"] for r in records] == [4, 5]

    def test_corrupt_journal_never_raises(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(_sweep_points(2), cache=cache, name="t")
        journal = cache.root / "journal.jsonl"
        journal.write_text(
            journal.read_text(encoding="utf-8") + "{not json\n", encoding="utf-8"
        )
        assert len(journal_records(cache)) == 2

    def test_training_from_journal_matches_direct(self, tmp_path):
        """A surrogate trained via the journal sees the real outputs."""
        cache = ResultCache(tmp_path / "cache")
        run_sweep(_sweep_points(8), cache=cache, name="t")
        records = [
            (record["kwargs"], record["outputs"]) for record in journal_records(cache)
        ]
        surrogate = SurrogateSet.fit(records, ("value",), seed=0)
        means, _ = surrogate.predict([{"value": 3, "seed": 1}])["value"]
        assert abs(means[0] - 3.0) < 2.0
