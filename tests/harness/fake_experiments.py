"""Tiny synthetic experiment drivers for orchestrator tests.

These follow the same declarative protocol as the real drivers in
:mod:`repro.harness.experiments` (``sweep``/``finalize``/``run``) but
compute in microseconds, so suite-level scheduling behaviour can be
tested without standing up simulations.  Module-level so the point
functions pickle by reference into worker processes.
"""

from __future__ import annotations

from typing import Dict

from repro.harness.parallel import Sweep, merge_rows


def _calc(value: int, scale: int = 1, seed: int = 0) -> dict:
    return {"value": value, "scaled": value * scale, "seed": seed}


def _negate(value: int, seed: int = 0) -> dict:
    return {"value": value, "negated": -value, "seed": seed}


def _explode(value: int) -> dict:
    raise RuntimeError(f"fake point {value} exploded")


def sweep(n: int = 4, scale: int = 1, root_seed: int = 42) -> Sweep:
    sw = Sweep("fake-alpha", root_seed=root_seed)
    for i in range(n):
        label = f"v={i}"
        sw.point(_calc, label=label, value=i, scale=scale, seed=sw.seed_for(label))
    return sw


def finalize(results, tag: str = "alpha") -> Dict[str, object]:
    return {"experiment": tag, "rows": merge_rows(results)}


def run(
    n: int = 4,
    scale: int = 1,
    root_seed: int = 42,
    tag: str = "alpha",
    jobs: int = 1,
    cache=None,
    pool=None,
) -> Dict[str, object]:
    return finalize(
        sweep(n=n, scale=scale, root_seed=root_seed).run(jobs=jobs, cache=cache, pool=pool),
        tag=tag,
    )


def summarize(results: Dict[str, object]) -> str:
    return f"fake: {len(results['rows'])} rows"


def _wave(x: float, y: float, seed: int = 0) -> dict:
    """Two synthetic curves that cross at ``x = 1.5 * y``."""
    return {"a": 10.0 + 2.0 * x, "b": 10.0 + 3.0 * y, "seed": seed}


def explore_space(nx: int = 21, root_seed: int = 42):
    """Synthetic explore space with crossovers at x=3 (y=2) and x=6 (y=4)."""
    from repro.harness.adaptive import CrossoverSpec, ExploreSpace

    return ExploreSpace(
        name="fake-wave",
        point_fn=_wave,
        axes={"y": [2.0, 4.0], "x": [float(i) for i in range(nx)]},
        crossover=CrossoverSpec(along="x", metric="a", minus="b"),
        root_seed=root_seed,
    )
