"""Tests for the aging experiment driver (registration, determinism,
rollup schema)."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, _resolve_experiment
from repro.harness.experiments import aging
from repro.harness.orchestrator import suite_experiments

#: Tiny windows: enough traffic for non-degenerate rollups, small
#: enough for tier-1 (two schemes x one age x two cache sizes).
QUICK = dict(
    schemes=("gimbal",),
    ages=(0.8,),
    cache_sizes=(None, 4),
    skews=(0.6,),
    warmup_us=20_000.0,
    measure_us=40_000.0,
)

ROLLUP_FIELDS = (
    "scheme",
    "age",
    "cache_pages",
    "skew",
    "total_bandwidth_mbps",
    "read_p99_us",
    "read_p99_inflation",
    "map_hit_rate",
    "map_misses",
    "map_writebacks",
    "write_amplification",
    "wl_migrations",
    "retired_blocks",
    "wear_spread",
    "wear_jain",
    "write_cost_actual",
    "write_cost_estimated",
    "write_cost_error",
)


@pytest.fixture(scope="module")
def results():
    return aging.run(cache=False, **QUICK)


class TestRegistration:
    def test_registered_in_cli(self):
        assert "aging" in EXPERIMENTS
        assert _resolve_experiment("aging") == "aging"
        module_path, quick_kwargs = EXPERIMENTS["aging"]
        assert module_path == "repro.harness.experiments.aging"
        assert quick_kwargs["measure_us"] < aging.DEFAULT_MEASURE_US

    def test_part_of_the_suite(self):
        specs = suite_experiments(quick=True, names=["aging"])
        assert [spec.name for spec in specs] == ["aging"]
        assert any(spec.name == "aging" for spec in suite_experiments(quick=True))


class TestRollups:
    def test_every_row_has_the_full_schema(self, results):
        assert results["figure"] == "aging"
        rows = results["rows"]
        assert len(rows) == 2  # one scheme x one age x two cache sizes
        for row in rows:
            for field in ROLLUP_FIELDS:
                assert field in row, f"rollup missing {field}"

    def test_small_cache_misses_and_inflates(self, results):
        by_cache = {row["cache_pages"]: row for row in results["rows"]}
        full, small = by_cache[None], by_cache[4]
        assert full["map_hit_rate"] == 1.0
        assert full["map_misses"] == 0
        assert full["read_p99_inflation"] == 1.0
        assert small["map_misses"] > 0
        assert small["map_hit_rate"] < 1.0

    def test_aged_device_shows_wear(self, results):
        for row in results["rows"]:
            assert row["wear_spread"] >= 0
            assert row["retired_blocks"] >= 0
            assert row["write_amplification"] >= 1.0
            assert 0.0 < row["wear_jain"] <= 1.0

    def test_gimbal_rows_carry_estimator_error(self, results):
        for row in results["rows"]:
            assert row["write_cost_estimated"] is not None
            assert row["write_cost_actual"] > 0
            assert row["write_cost_error"] is not None


class TestDeterminism:
    def test_serial_equals_parallel(self):
        serial = aging.run(cache=False, jobs=1, **QUICK)
        parallel = aging.run(cache=False, jobs=2, **QUICK)
        assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)
