"""Sharded rack execution: identity, invariance and budget gates.

The hard contract is per-plan determinism: running the same shard plan
inline (single-process round-robin) and with worker processes must
produce byte-identical outcome JSON, for both kernel backends.  Shard
*count* invariance additionally holds structurally (same tenants, same
reclamation accounting, same drain clock) because shards never share
simulator state.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.experiments import rack
from repro.harness.kvcluster import KvCluster, KvClusterConfig
from repro.sim.engine import KERNEL_BACKEND_ENV
from repro.sim.shard import EFFECTIVE_JOBS_ENV
from repro.workloads.population import TenantPopulation


def _config() -> KvClusterConfig:
    return KvClusterConfig(
        scheme="gimbal",
        condition="clean",
        num_jbofs=2,
        ssds_per_jbof=2,
        seed=11,
    )


def _specs(tenants: int = 3, horizon_us: float = 9_000.0):
    return TenantPopulation(
        tenants=tenants, horizon_us=horizon_us, churn=0.8, seed=5
    ).generate()


def _churn(shards, mode="inline"):
    cluster = KvCluster(_config(), shards=shards, shard_mode=mode)
    return cluster.run_population(_specs())


class TestPlanIdentity:
    @pytest.mark.parametrize("backend", ["reference", "batch"])
    def test_inline_vs_processes_byte_identical(self, backend, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, backend)
        inline = _churn(shards=2, mode="inline")
        multiproc = _churn(shards=2, mode="processes")
        assert json.dumps(inline, sort_keys=True) == json.dumps(
            multiproc, sort_keys=True
        )
        assert inline["megas_leaked"] == 0

    def test_bounded_run_inline_vs_processes(self):
        outcomes = {}
        for mode in ("inline", "processes"):
            cluster = KvCluster(_config(), shards=2, shard_mode=mode)
            cluster.add_instance("db0", "A", record_count=128)
            cluster.add_instance("db1", "B", record_count=128)
            cluster.load_all()
            outcomes[mode] = cluster.run(warmup_us=2_000.0, measure_us=3_000.0)
        assert json.dumps(outcomes["inline"], sort_keys=True) == json.dumps(
            outcomes["processes"], sort_keys=True
        )
        assert outcomes["inline"]["total_kops"] > 0


class TestShardCountInvariance:
    def test_one_vs_two_shards_structurally_equal(self):
        one = _churn(shards=1)
        two = _churn(shards=2)
        for outcome in (one, two):
            outcome.pop("shard")
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)

    def test_sharded_tracks_unsharded(self):
        # The boundary charges one control-message latency for connect /
        # disconnect (instant calls unsharded), so clocks drift by a few
        # microseconds; everything structural must still match.
        unsharded = KvCluster(_config()).run_population(_specs())
        sharded = _churn(shards=2)
        assert sharded["megas_leaked"] == 0
        assert unsharded["megas_leaked"] == 0
        assert len(sharded["tenants"]) == len(unsharded["tenants"])
        assert sharded["peak_tenants"] == unsharded["peak_tenants"]
        assert abs(sharded["drained_us"] - unsharded["drained_us"]) < 100.0


class TestShardOutcome:
    def test_population_outcome_records_shard_fields(self):
        outcome = _churn(shards=2)
        shard = outcome["shard"]
        assert shard["shards"] == 2
        assert shard["requested"] == 2
        assert shard["clamped"] is False
        assert shard["windows"] > 0
        assert shard["messages"] > 0
        assert shard["lookahead_us"] > 0.0

    def test_shard_count_clamped_to_jbofs(self):
        cluster = KvCluster(_config(), shards=5, shard_mode="inline")
        assert cluster.shard_plan.shards == 2  # only 2 JBOFs to host
        assert cluster.shard_plan.requested == 5

    def test_unsharded_outcome_has_no_shard_key(self):
        outcome = KvCluster(_config()).run_population(_specs())
        assert "shard" not in outcome


class TestRackDriver:
    POINT = dict(
        scheme="gimbal",
        jbofs=2,
        ssds_per_jbof=2,
        tenants=3,
        churn=0.8,
        skew=0.9,
        horizon_us=9_000.0,
        condition="clean",
        seed=11,
    )

    def test_point_rows_record_shard_fields(self):
        row = rack._point(**self.POINT, shards=2, shard_mode="inline")
        assert row["shards"] == 2
        assert row["shards_requested"] == 2
        assert row["shards_clamped"] is False
        assert row["shard_windows"] > 0
        assert row["shard_messages"] > 0
        assert row["megas_leaked"] == 0

    def test_unsharded_rows_have_no_shard_fields(self):
        row = rack._point(**self.POINT)
        assert "shards" not in row

    def test_budget_clamp_recorded_and_journaled(self, monkeypatch):
        # Budget of 1: no headroom for worker processes, so the plan
        # falls back to inline execution and the clamp is journaled.
        monkeypatch.setenv(EFFECTIVE_JOBS_ENV, "1")
        row = rack._point(**self.POINT, shards=2, shard_mode="processes")
        assert row["shards_clamped"] is True
        assert row["shards"] == 2
        out = rack.finalize([row])
        assert out["shards_clamped"] == 1
