"""Property-based determinism gates for the sharded rack.

Hypothesis draws random churn schedules, shard fan-outs and kernel
backends, and asserts the two invariants the sharded layer promises
unconditionally:

* the same shard plan executed inline and with worker processes
  produces byte-identical outcome JSON;
* every schedule drains with zero leaked mega blobs (reclamation is
  independent of the execution layer).

Schedules are kept tiny (a few tenants over a few simulated
milliseconds): each example runs the full rack stack twice, and the
window count scales with the simulated horizon.
"""

from __future__ import annotations

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.kvcluster import KvCluster, KvClusterConfig
from repro.sim.engine import KERNEL_BACKEND_ENV
from repro.workloads.population import TenantPopulation


def _outcome(shards, mode, backend, tenants, horizon_us, churn, skew, seed, monkeypatch):
    monkeypatch.setenv(KERNEL_BACKEND_ENV, backend)
    try:
        cluster = KvCluster(
            KvClusterConfig(
                scheme="gimbal",
                condition="clean",
                num_jbofs=2,
                ssds_per_jbof=2,
                seed=11,
            ),
            shards=shards,
            shard_mode=mode,
        )
        specs = TenantPopulation(
            tenants=tenants,
            horizon_us=horizon_us,
            churn=churn,
            skew=skew,
            seed=seed,
        ).generate()
        return cluster.run_population(specs)
    finally:
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    tenants=st.integers(min_value=2, max_value=4),
    horizon_ms=st.integers(min_value=5, max_value=9),
    churn=st.sampled_from([0.5, 0.8, 1.0]),
    skew=st.sampled_from([0.5, 0.9]),
    shards=st.sampled_from([1, 2]),
    backend=st.sampled_from(["reference", "batch"]),
    seed=st.integers(min_value=1, max_value=10_000),
)
def test_inline_and_processes_agree_and_never_leak(
    tenants, horizon_ms, churn, skew, shards, backend, seed
):
    monkeypatch = pytest.MonkeyPatch()
    try:
        params = dict(
            shards=shards,
            backend=backend,
            tenants=tenants,
            horizon_us=float(horizon_ms) * 1_000.0,
            churn=churn,
            skew=skew,
            seed=seed,
            monkeypatch=monkeypatch,
        )
        inline = _outcome(mode="inline", **params)
        multiproc = _outcome(mode="processes", **params)
    finally:
        monkeypatch.undo()

    assert json.dumps(inline, sort_keys=True) == json.dumps(
        multiproc, sort_keys=True
    )
    assert inline["megas_leaked"] == 0
    assert inline["shard"]["shards"] == shards
    assert len(inline["tenants"]) == tenants
