"""Incremental invalidation: editing a module re-runs exactly the
points that transitively import it.

Builds a throwaway package with two independent dependency chains
(``points_a -> dep_alpha``, ``points_b -> dep_beta``), caches one sweep
over both, then mutates ``dep_alpha``.  Only the point whose closure
contains the edited file may recompute; the other chain must stay warm.
"""

from __future__ import annotations

import importlib
import os
import sys
import textwrap
import uuid

import pytest

from repro.harness.cache import ResultCache, clear_fingerprint_caches
from repro.harness.parallel import SweepPoint, run_sweep


@pytest.fixture
def fake_pkg(tmp_path):
    name = f"fakesim_{uuid.uuid4().hex[:10]}"
    pkg = tmp_path / name
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "dep_alpha.py").write_text("SCALE = 1\n", encoding="utf-8")
    (pkg / "dep_beta.py").write_text("SCALE = 10\n", encoding="utf-8")
    (pkg / "points_a.py").write_text(
        textwrap.dedent(
            f"""
            from {name} import dep_alpha


            def point(x, log):
                with open(log, "a", encoding="utf-8") as handle:
                    handle.write("a\\n")
                return {{"which": "a", "value": dep_alpha.SCALE * x}}
            """
        ),
        encoding="utf-8",
    )
    (pkg / "points_b.py").write_text(
        textwrap.dedent(
            f"""
            from {name} import dep_beta


            def point(x, log):
                with open(log, "a", encoding="utf-8") as handle:
                    handle.write("b\\n")
                return {{"which": "b", "value": dep_beta.SCALE * x}}
            """
        ),
        encoding="utf-8",
    )
    sys.path.insert(0, str(tmp_path))
    importlib.invalidate_caches()
    try:
        yield name, pkg
    finally:
        sys.path.remove(str(tmp_path))
        for module in [m for m in sys.modules if m == name or m.startswith(f"{name}.")]:
            del sys.modules[module]
        clear_fingerprint_caches()


def _bump_mtime(path, seconds=5):
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_mtime_ns + seconds * 10**9,) * 2)


def test_editing_a_dependency_invalidates_only_its_importers(fake_pkg, tmp_path):
    name, pkg = fake_pkg
    points_a = importlib.import_module(f"{name}.points_a")
    points_b = importlib.import_module(f"{name}.points_b")
    log = tmp_path / "executions.log"
    cache = ResultCache(tmp_path / "cache")

    def points():
        return [
            SweepPoint(index=0, label="a", fn=points_a.point, kwargs={"x": 2, "log": str(log)}),
            SweepPoint(index=1, label="b", fn=points_b.point, kwargs={"x": 2, "log": str(log)}),
        ]

    executions = lambda: log.read_text(encoding="utf-8").splitlines()  # noqa: E731

    # Cold: both points execute and are stored.
    run_sweep(points(), cache=cache, name="inv")
    assert sorted(executions()) == ["a", "b"]

    # Warm, nothing edited: neither point re-executes.
    run_sweep(points(), cache=cache, name="inv")
    assert sorted(executions()) == ["a", "b"]

    # Edit dep_alpha (same size, new content + mtime): only the chain
    # that transitively imports it recomputes.
    alpha = pkg / "dep_alpha.py"
    alpha.write_text("SCALE = 2\n", encoding="utf-8")
    _bump_mtime(alpha)
    run_sweep(points(), cache=cache, name="inv")
    assert sorted(executions()) == ["a", "a", "b"]

    # And the recomputed entry is itself warm now.
    run_sweep(points(), cache=cache, name="inv")
    assert sorted(executions()) == ["a", "a", "b"]


def test_editing_the_point_module_itself_invalidates(fake_pkg, tmp_path):
    name, pkg = fake_pkg
    points_a = importlib.import_module(f"{name}.points_a")
    log = tmp_path / "executions.log"
    cache = ResultCache(tmp_path / "cache")
    point = [SweepPoint(index=0, label="a", fn=points_a.point, kwargs={"x": 1, "log": str(log)})]

    run_sweep(point, cache=cache, name="inv")
    run_sweep(point, cache=cache, name="inv")
    assert log.read_text(encoding="utf-8").count("a") == 1

    module_file = pkg / "points_a.py"
    module_file.write_text(
        module_file.read_text(encoding="utf-8") + "\n# edited\n", encoding="utf-8"
    )
    _bump_mtime(module_file)
    run_sweep(point, cache=cache, name="inv")
    assert log.read_text(encoding="utf-8").count("a") == 2


def test_package_init_is_part_of_the_closure(fake_pkg, tmp_path):
    """Editing the package ``__init__`` (which executes on import)
    invalidates every point in the package."""
    name, pkg = fake_pkg
    points_a = importlib.import_module(f"{name}.points_a")
    points_b = importlib.import_module(f"{name}.points_b")
    log = tmp_path / "executions.log"
    cache = ResultCache(tmp_path / "cache")
    points = [
        SweepPoint(index=0, label="a", fn=points_a.point, kwargs={"x": 1, "log": str(log)}),
        SweepPoint(index=1, label="b", fn=points_b.point, kwargs={"x": 1, "log": str(log)}),
    ]

    run_sweep(points, cache=cache, name="inv")
    init = pkg / "__init__.py"
    init.write_text("# package-level constant\n", encoding="utf-8")
    _bump_mtime(init)
    run_sweep(points, cache=cache, name="inv")
    assert sorted(log.read_text(encoding="utf-8").splitlines()) == ["a", "a", "b", "b"]
