"""Tests for the shared experiment helpers."""

from __future__ import annotations

import pytest

from repro.harness.experiments import common
from repro.harness.testbed import TestbedConfig


class TestSpecs:
    def test_read_spec_defaults(self):
        spec = common.read_spec("r", 1)
        assert spec.read_ratio == 1.0
        assert spec.queue_depth == 32  # paper: QD32 for 4 KiB
        assert spec.pattern == "random"

    def test_large_read_spec_uses_qd4(self):
        assert common.read_spec("r", 32).queue_depth == 4

    def test_write_spec_pattern_by_size(self):
        # Section 5.1: 128 KiB writes sequential, 4 KiB writes random.
        assert common.write_spec("w", 32).pattern == "sequential"
        assert common.write_spec("w", 1).pattern == "random"

    def test_default_queue_depth_fallback(self):
        assert common.default_queue_depth(8) == 8


class TestRunWorkers:
    def test_results_contain_testbed(self):
        results = common.run_workers(
            TestbedConfig(scheme="vanilla", condition="clean"),
            [common.read_spec("r", 1)],
            warmup_us=5_000.0,
            measure_us=20_000.0,
        )
        assert "testbed" in results
        assert results["workers"][0]["bandwidth_mbps"] > 0


class TestStandaloneCache:
    def test_standalone_bandwidth_cached(self):
        spec = common.read_spec("probe", 1)
        first = common.standalone_bandwidth("clean", spec, measure_us=30_000.0)
        # Second call with the same shape must hit the cache (identical
        # value, no new simulation).
        second = common.standalone_bandwidth("clean", spec, measure_us=30_000.0)
        assert first == second
        assert first > 100.0

    def test_futils_shape(self):
        specs = [common.read_spec(f"r{i}", 1) for i in range(2)]
        results = common.run_workers(
            TestbedConfig(scheme="vanilla", condition="clean"),
            specs,
            warmup_us=5_000.0,
            measure_us=30_000.0,
        )
        futils = common.f_utils_for(results, specs, "clean")
        assert len(futils) == 2
        assert all(value > 0 for value in futils)
