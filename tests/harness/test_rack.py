"""Tests for the rack-scale churn experiment driver."""

from __future__ import annotations

import json

import pytest

from repro.harness.experiments import rack


TINY = dict(
    schemes=("gimbal",),
    rack=(1,),
    ssds_per_jbof=2,
    tenants=4,
    horizon_us=120_000.0,
)


class TestSweepShape:
    def test_one_point_per_combination(self):
        sw = rack.sweep(
            schemes=("gimbal", "vanilla"),
            rack=(2, 4),
            churns=(0.5, 0.8),
            skews=(0.9,),
        )
        assert len(sw) == 8
        labels = [point.label for point in sw.points]
        assert len(set(labels)) == 8
        assert labels[0] == "scheme=gimbal,jbofs=2,churn=0.5,skew=0.9"

    def test_points_carry_derived_seeds(self):
        sw = rack.sweep(schemes=("gimbal",), rack=(2,))
        point = sw.points[0]
        assert point.kwargs["seed"] == sw.seed_for(point.label)


class TestRun:
    def test_tiny_rack_runs_clean(self):
        results = rack.run(**TINY)
        assert results["figure"] == "rack"
        (row,) = results["rows"]
        assert row["tenants_run"] == 4
        assert row["megas_leaked"] == 0
        assert row["megas_allocated"] > 0
        assert row["total_kops"] > 0
        assert 0.0 < row["jain"] <= 1.0
        assert row["peak_tenants"] >= 1

    def test_serial_and_parallel_identical(self):
        serial = rack.run(**TINY, jobs=1)
        parallel = rack.run(**TINY, jobs=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_finalize_rejects_leaks(self):
        with pytest.raises(RuntimeError):
            rack.finalize([{"megas_leaked": 2}])

    def test_summarize_renders(self):
        results = rack.run(**TINY)
        text = rack.summarize(results)
        assert "Rack-scale churn" in text
        assert "gimbal" in text

    def test_registered_in_cli(self):
        from repro.cli import EXPERIMENTS

        module_path, quick = EXPERIMENTS["rack"]
        assert module_path == "repro.harness.experiments.rack"
        assert quick["tenants"] >= 2
