"""Acceptance test: warm re-runs of the golden sweeps are nearly free.

Runs the fig02 and fig07 sweeps at the golden-test configurations
(the same ones ``tests/golden`` regresses against) three ways --
uncached, cold-cached, warm-cached -- and asserts that

* the warm run is at least 5x faster than the cold run, and
* all three produce byte-identical JSON output.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.harness.cache import ResultCache
from repro.harness.experiments import fig02_unloaded_latency as fig02
from repro.harness.experiments import fig07_fairness as fig07
from tests.golden.regenerate import GOLDEN_CONFIGS

MIN_WARM_SPEEDUP = 5.0


@pytest.mark.parametrize("name,module", [("fig02", fig02), ("fig07", fig07)])
def test_warm_rerun_is_fast_and_byte_identical(name, module, tmp_path):
    kwargs = GOLDEN_CONFIGS[name]
    cache = ResultCache(tmp_path / "cache")

    uncached = module.run(**kwargs, cache=False)

    start = time.perf_counter()
    cold = module.run(**kwargs, cache=cache)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = module.run(**kwargs, cache=cache)
    warm_s = time.perf_counter() - start

    assert cache.stats.misses > 0 and cache.stats.hits == cache.stats.misses

    as_json = lambda results: json.dumps(results, sort_keys=True)  # noqa: E731
    assert as_json(cold) == as_json(uncached), "cold cached run diverged"
    assert as_json(warm) == as_json(uncached), "warm cached run diverged"

    speedup = cold_s / max(warm_s, 1e-9)
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm {name} rerun only {speedup:.1f}x faster than cold "
        f"(cold {cold_s:.2f}s, warm {warm_s:.3f}s); expected >= {MIN_WARM_SPEEDUP}x"
    )
