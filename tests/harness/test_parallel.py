"""Tests for the parallel sweep runner and its determinism contract.

The contract under test: an experiment produces byte-identical merged
results whether its points run serially, serially again, or fanned out
across worker processes -- and whether or not an observability session
is capturing.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import obs
from repro.harness.experiments import fig14_read_ratio as fig14
from repro.harness.parallel import (
    Sweep,
    SweepPoint,
    WorkerPool,
    merge_histograms,
    merge_rows,
    point_seed,
    run_sweep,
    sweep_axes,
)
from repro.metrics import LatencyHistogram


# Module-level so points pickle by reference into worker processes.
def _square(value: int, seed: int = 0) -> dict:
    return {"value": value, "squared": value * value, "seed": seed}


def _boom(value: int) -> dict:
    raise RuntimeError(f"point {value} exploded")


def _sleep_then_square(value: int, sleep_s: float = 0.0) -> dict:
    time.sleep(sleep_s)
    return {"value": value, "squared": value * value}


class TestRunSweep:
    def test_serial_results_in_point_order(self):
        points = [
            SweepPoint(index=i, label=f"p{i}", fn=_square, kwargs={"value": i})
            for i in range(5)
        ]
        results = run_sweep(points, jobs=1)
        assert [r["squared"] for r in results] == [0, 1, 4, 9, 16]

    def test_parallel_results_in_point_order(self):
        points = [
            SweepPoint(index=i, label=f"p{i}", fn=_square, kwargs={"value": i})
            for i in range(8)
        ]
        assert run_sweep(points, jobs=4) == run_sweep(points, jobs=1)

    def test_duplicate_indices_rejected(self):
        points = [
            SweepPoint(index=0, label="a", fn=_square, kwargs={"value": 1}),
            SweepPoint(index=0, label="b", fn=_square, kwargs={"value": 2}),
        ]
        with pytest.raises(ValueError, match="unique"):
            run_sweep(points)

    def test_point_error_propagates_serial(self):
        points = [SweepPoint(index=0, label="x", fn=_boom, kwargs={"value": 7})]
        with pytest.raises(RuntimeError, match="point 7 exploded"):
            run_sweep(points, jobs=1)

    def test_point_error_propagates_parallel(self):
        points = [SweepPoint(index=0, label="x", fn=_boom, kwargs={"value": 7})]
        with pytest.raises(RuntimeError, match="point 7 exploded"):
            run_sweep(points, jobs=2)

    def test_poisoned_point_surfaces_before_slow_siblings(self):
        """Satellite (a): a failing point must not queue behind a slow one.

        A slow point is submitted *first*; with completion-order
        consumption the poisoned point's error surfaces while the slow
        sibling is still sleeping, instead of after it finishes (which
        is what submission-order iteration did).
        """
        slow_s = 2.5
        points = [
            SweepPoint(
                index=0, label="slow", fn=_sleep_then_square,
                kwargs={"value": 1, "sleep_s": slow_s},
            ),
            SweepPoint(index=1, label="poisoned", fn=_boom, kwargs={"value": 13}),
        ]
        with ProcessPoolExecutor(max_workers=2) as executor:
            # Warm both workers so spawn cost stays out of the timing.
            run_sweep(
                [
                    SweepPoint(index=i, label=f"warm{i}", fn=_sleep_then_square,
                               kwargs={"value": i, "sleep_s": 0.2})
                    for i in range(2)
                ],
                executor=executor,
            )
            started = time.perf_counter()
            with pytest.raises(RuntimeError, match="point 13 exploded"):
                run_sweep(points, executor=executor)
            elapsed = time.perf_counter() - started
        assert elapsed < slow_s, (
            f"error took {elapsed:.2f}s to surface -- it waited out the slow point"
        )


class TestJobsClamp:
    def test_oversubscribed_jobs_clamp_to_cpu_count(self, monkeypatch, tmp_path):
        import repro.harness.parallel as parallel_mod
        from repro.harness.cache import ResultCache

        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 2)
        cache = ResultCache(tmp_path / "cache")
        points = [
            SweepPoint(index=i, label=f"p{i}", fn=_square, kwargs={"value": i})
            for i in range(4)
        ]
        with obs.capture() as session:
            results = run_sweep(points, jobs=64, cache=cache, name="clamped")
        assert [r["squared"] for r in results] == [0, 1, 4, 9]
        record = cache.read_journal()[-1]
        assert record["sweep"] == "clamped"
        assert record["jobs_requested"] == 64
        assert record["jobs_effective"] == 2
        assert session.registry.counter("sweep.jobs_clamped").value == 1

    def test_within_budget_jobs_unclamped(self, monkeypatch, tmp_path):
        import repro.harness.parallel as parallel_mod
        from repro.harness.cache import ResultCache

        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 8)
        cache = ResultCache(tmp_path / "cache")
        points = [
            SweepPoint(index=i, label=f"p{i}", fn=_square, kwargs={"value": i})
            for i in range(2)
        ]
        run_sweep(points, jobs=2, cache=cache, name="unclamped")
        record = cache.read_journal()[-1]
        assert record["jobs_requested"] == 2
        assert record["jobs_effective"] == 2


class TestSweepBuilder:
    def test_points_get_sequential_indices_and_labels(self):
        sweep = Sweep("s")
        sweep.point(_square, value=3)
        sweep.point(_square, label="named", value=4)
        assert [p.index for p in sweep.points] == [0, 1]
        assert sweep.points[0].label == "value=3"
        assert sweep.points[1].label == "named"

    def test_seeds_are_stable_and_label_dependent(self):
        sweep = Sweep("s", root_seed=7)
        assert sweep.seed_for("a") == point_seed(7, "a")
        assert sweep.seed_for("a") != sweep.seed_for("b")
        assert sweep.seed_for("a") == Sweep("other-name", root_seed=7).seed_for("a")

    def test_duplicate_labels_rejected(self):
        """Satellite (b): duplicate labels would silently share a seed."""
        sweep = Sweep("s")
        sweep.point(_square, label="same", value=1)
        with pytest.raises(ValueError, match="duplicate sweep point label 'same'"):
            sweep.point(_square, label="same", value=2)

    def test_duplicate_default_labels_rejected(self):
        sweep = Sweep("s")
        sweep.point(_square, value=3)
        with pytest.raises(ValueError, match="duplicate"):
            sweep.point(_square, value=3)

    def test_sweep_axes_nested_loop_order(self):
        combos = sweep_axes({"x": (1, 2), "y": ("a", "b")})
        assert combos == [
            {"x": 1, "y": "a"},
            {"x": 1, "y": "b"},
            {"x": 2, "y": "a"},
            {"x": 2, "y": "b"},
        ]


class TestWorkerPool:
    def test_pool_is_lazy_until_first_dispatch(self):
        pool = WorkerPool(1)
        assert pool._executor is None
        pool.close()  # closing a never-used pool is a no-op

    def test_sweeps_reusing_one_pool_match_serial(self):
        points_a = [
            SweepPoint(index=i, label=f"a{i}", fn=_square, kwargs={"value": i})
            for i in range(4)
        ]
        points_b = [
            SweepPoint(index=i, label=f"b{i}", fn=_square, kwargs={"value": i + 10})
            for i in range(3)
        ]
        with WorkerPool(1) as pool:
            pooled_a = run_sweep(points_a, pool=pool)
            pooled_b = run_sweep(points_b, pool=pool)
        assert pooled_a == run_sweep(points_a, jobs=1)
        assert pooled_b == run_sweep(points_b, jobs=1)

    def test_error_inside_pool_leaves_it_usable(self):
        with WorkerPool(1) as pool:
            with pytest.raises(RuntimeError, match="point 7 exploded"):
                run_sweep(
                    [SweepPoint(index=0, label="x", fn=_boom, kwargs={"value": 7})],
                    pool=pool,
                )
            survivors = run_sweep(
                [SweepPoint(index=0, label="ok", fn=_square, kwargs={"value": 2})],
                pool=pool,
            )
        assert survivors == [{"value": 2, "squared": 4, "seed": 0}]


class TestMergeHelpers:
    def test_merge_rows_flattens_one_level(self):
        assert merge_rows([{"a": 1}, [{"b": 2}, {"c": 3}], {"d": 4}]) == [
            {"a": 1},
            {"b": 2},
            {"c": 3},
            {"d": 4},
        ]

    def test_merge_histograms_equals_direct(self):
        direct = LatencyHistogram()
        shards = [LatencyHistogram() for _ in range(3)]
        for index, value in enumerate([5.0, 17.0, 120.0, 900.0, 42.0, 42.0]):
            direct.record(value)
            shards[index % 3].record(value)
        merged = merge_histograms(shards)
        assert merged.summary() == direct.summary()


class TestExperimentDeterminism:
    """Satellite: same experiment twice serially and once with jobs=4."""

    KWARGS = {"duration_us": 10_000.0, "read_ratios": (0.0, 0.5, 0.9, 1.0)}

    @staticmethod
    def _canonical(results) -> str:
        return json.dumps(results, sort_keys=True)

    def test_serial_serial_parallel_identical(self):
        first = self._canonical(fig14.run(**self.KWARGS))
        second = self._canonical(fig14.run(**self.KWARGS))
        parallel = self._canonical(fig14.run(**self.KWARGS, jobs=4))
        assert first == second
        assert first == parallel

    def test_traced_run_matches_untraced(self, tmp_path):
        untraced = self._canonical(fig14.run(**self.KWARGS))
        with obs.capture(trace_path=str(tmp_path / "journal.jsonl")) as session:
            traced = self._canonical(fig14.run(**self.KWARGS))
        assert traced == untraced
        # The capture actually observed the runs it claims not to perturb.
        assert session.probe.fired_total > 0

    def test_root_seed_changes_results(self):
        base = self._canonical(fig14.run(**self.KWARGS))
        reseeded = self._canonical(fig14.run(**self.KWARGS, root_seed=43))
        assert base != reseeded
