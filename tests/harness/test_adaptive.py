"""Tests for the surrogate-guided adaptive sweep engine."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.adaptive import (
    CrossoverSpec,
    ExploreSpace,
    _resolve_budget,
    explore,
    find_crossovers,
)
from repro.harness.cache import ResultCache
from repro.harness.parallel import run_sweep
from repro.harness.surrogate import flatten_numeric
from tests.harness.fake_experiments import _wave, explore_space


# ----------------------------------------------------------------------
# CrossoverSpec
# ----------------------------------------------------------------------
class TestCrossoverSpec:
    def test_two_curve_signal(self):
        spec = CrossoverSpec(along="x", metric="a", minus="b")
        assert spec.signal({"a": 5.0, "b": 3.0}) == 2.0
        assert spec.metrics == ("a", "b")

    def test_level_signal(self):
        spec = CrossoverSpec(along="x", metric="a", level=4.0)
        assert spec.signal({"a": 5.0}) == 1.0
        assert spec.metrics == ("a",)

    def test_missing_metric_is_none(self):
        spec = CrossoverSpec(along="x", metric="a", minus="b")
        assert spec.signal({"a": 5.0}) is None
        assert spec.signal({"b": 3.0}) is None


# ----------------------------------------------------------------------
# ExploreSpace
# ----------------------------------------------------------------------
class TestExploreSpace:
    def test_bad_along_axis_rejected(self):
        with pytest.raises(ValueError, match="crossover axis"):
            ExploreSpace(
                name="bad",
                point_fn=_wave,
                axes={"x": [1.0, 2.0]},
                crossover=CrossoverSpec(along="zz", metric="a"),
            )

    def test_crossover_metrics_join_targets(self):
        space = explore_space()
        assert "a" in space.targets and "b" in space.targets

    def test_point_matches_sweep_conventions(self):
        space = explore_space(nx=3)
        combos = space.combos()
        # Last axis fastest, labels in axis order.
        assert space.label(combos[0]) == "y=2.0,x=0.0"
        point = space.point(0, combos[0])
        assert point.kwargs["x"] == 0.0 and point.kwargs["y"] == 2.0
        assert isinstance(point.kwargs["seed"], int)
        # Same label -> same seed regardless of grid position.
        again = space.point(5, combos[0])
        assert again.kwargs["seed"] == point.kwargs["seed"]


# ----------------------------------------------------------------------
# find_crossovers
# ----------------------------------------------------------------------
def _space_1d(values):
    return ExploreSpace(
        name="line",
        point_fn=_wave,
        axes={"x": list(values)},
        crossover=CrossoverSpec(along="x", metric="s"),
    )


class TestFindCrossovers:
    def test_sign_flip_with_interpolation(self):
        space = _space_1d([0.0, 1.0, 2.0])
        # Signal +1 at x=1, -1 at x=2: flip midway.
        found = find_crossovers(space, {0: 3.0, 1: 1.0, 2: -1.0})
        assert len(found) == 1
        assert found[0]["lo"] == 1.0 and found[0]["hi"] == 2.0
        assert found[0]["estimate"] == pytest.approx(1.5)

    def test_exact_zero_counts_as_crossover(self):
        space = _space_1d([0.0, 1.0, 2.0])
        found = find_crossovers(space, {0: 0.0, 1: 1.0, 2: 2.0})
        assert len(found) == 1
        assert found[0]["estimate"] == 0.0

    def test_sparse_signals_bridge_gaps(self):
        space = _space_1d([0.0, 1.0, 2.0, 3.0, 4.0])
        # Only the endpoints known: the flip is still located between them.
        found = find_crossovers(space, {0: 2.0, 4: -2.0})
        assert len(found) == 1
        assert found[0]["lo"] == 0.0 and found[0]["hi"] == 4.0
        assert found[0]["estimate"] == pytest.approx(2.0)

    def test_no_flip_no_crossovers(self):
        space = _space_1d([0.0, 1.0, 2.0])
        assert find_crossovers(space, {0: 1.0, 1: 2.0, 2: 3.0}) == []

    def test_groups_reported_separately(self):
        space = explore_space(nx=5)
        combos = space.combos()
        signals = {
            index: _wave(combo["x"], combo["y"])["a"] - _wave(combo["x"], combo["y"])["b"]
            for index, combo in enumerate(combos)
        }
        found = find_crossovers(space, signals)
        groups = {c["group"]["y"]: c["estimate"] for c in found}
        assert groups[2.0] == pytest.approx(3.0)
        # y=4 crosses at x=6, outside a 5-wide grid.
        assert 4.0 not in groups


# ----------------------------------------------------------------------
# Budget resolution
# ----------------------------------------------------------------------
class TestResolveBudget:
    def test_fraction_of_grid(self):
        assert _resolve_budget(0.2, 100) == 20

    def test_absolute_count(self):
        assert _resolve_budget(15, 100) == 15

    def test_clamped_to_grid(self):
        assert _resolve_budget(500, 100) == 100

    def test_at_least_one(self):
        assert _resolve_budget(0.001, 100) == 1

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            _resolve_budget(0.0, 100)


# ----------------------------------------------------------------------
# The engine on the synthetic space
# ----------------------------------------------------------------------
class TestExplore:
    def test_budget_respected_and_crossovers_found(self):
        space = explore_space()
        result = explore(space, budget=0.5, target_error=0.01, cache=False)
        assert result.simulated_count <= result.budget_points
        assert result.fraction_simulated <= 0.5 + 1e-9
        by_group = {c["group"]["y"]: c for c in result.crossovers}
        assert by_group[2.0]["estimate"] == pytest.approx(3.0, abs=1.0)
        assert by_group[4.0]["estimate"] == pytest.approx(6.0, abs=1.0)

    def test_deterministic_across_runs(self):
        space = explore_space()
        a = explore(space, budget=0.4, target_error=0.01, cache=False)
        b = explore(explore_space(), budget=0.4, target_error=0.01, cache=False)
        assert a.simulated_labels == b.simulated_labels
        assert a.crossovers == b.crossovers
        assert a.heldout == b.heldout

    def test_simulated_points_byte_identical_to_run_sweep(self):
        space = explore_space()
        result = explore(space, budget=0.3, target_error=0.01, cache=False)
        combos = space.combos()
        by_label = {space.label(combo): i for i, combo in enumerate(combos)}
        points = [
            space.point(pos, combos[by_label[label]])
            for pos, label in enumerate(result.simulated_labels)
        ]
        direct = run_sweep(points, jobs=1, cache=False)
        for label, value in zip(result.simulated_labels, direct):
            assert pickle.dumps(result.results[label]) == pickle.dumps(value)

    def test_knn_backend(self):
        result = explore(
            explore_space(), budget=0.4, target_error=0.01, cache=False, backend="knn"
        )
        assert result.backend == "knn"
        assert any(c["group"]["y"] == 2.0 for c in result.crossovers)

    def test_progress_events_emitted(self):
        events = []
        explore(
            explore_space(),
            budget=0.3,
            target_error=0.01,
            cache=False,
            progress=lambda event, payload: events.append(event),
        )
        names = set(events)
        assert "batch" in names and "done" in names

    def test_heldout_stats_shape(self):
        result = explore(explore_space(), budget=0.4, target_error=0.0, cache=False)
        assert set(result.heldout) <= set(explore_space().targets)
        for stats in result.heldout.values():
            assert stats["count"] > 0
            assert stats["rmse"] >= 0.0
            assert stats["rel_rmse"] >= 0.0

    def test_report_is_json_safe(self):
        import json

        result = explore(explore_space(nx=9), budget=0.5, target_error=0.01, cache=False)
        json.dumps(result.report())

    def test_journal_bootstrap_reduces_simulation(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        space = explore_space()
        first = explore(space, budget=0.4, target_error=0.05, cache=cache)
        assert first.simulated_count > 0
        # Second run trains from the journal before spending budget.
        second = explore(
            explore_space(), budget=0.4, target_error=0.05, cache=cache
        )
        assert second.simulated_count <= first.simulated_count
        # And the crossovers it reports still agree.
        by_group = {c["group"]["y"]: c for c in second.crossovers}
        assert by_group[2.0]["estimate"] == pytest.approx(3.0, abs=1.0)


# ----------------------------------------------------------------------
# Property-based guarantees
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(root_seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_explore_is_deterministic(root_seed):
    """Same space + seed -> identical point selection and predictions."""
    a = explore(
        explore_space(nx=9, root_seed=root_seed), budget=0.5, target_error=0.01,
        cache=False,
    )
    b = explore(
        explore_space(nx=9, root_seed=root_seed), budget=0.5, target_error=0.01,
        cache=False,
    )
    assert a.simulated_labels == b.simulated_labels
    assert pickle.dumps(a.predicted) == pickle.dumps(b.predicted)
    assert a.crossovers == b.crossovers


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    root_seed=st.integers(min_value=0, max_value=2**31 - 1),
    budget=st.sampled_from([0.3, 0.5, 7]),
)
def test_property_simulated_points_match_direct_execution(root_seed, budget):
    """Every point the engine simulates is byte-equal to run_sweep's."""
    space = explore_space(nx=9, root_seed=root_seed)
    result = explore(space, budget=budget, target_error=0.01, cache=False)
    combos = space.combos()
    by_label = {space.label(combo): i for i, combo in enumerate(combos)}
    points = [
        space.point(pos, combos[by_label[label]])
        for pos, label in enumerate(result.simulated_labels)
    ]
    direct = run_sweep(points, jobs=1, cache=False)
    for label, value in zip(result.simulated_labels, direct):
        assert pickle.dumps(result.results[label]) == pickle.dumps(value)


def test_signals_survive_flattening():
    """The engine computes signals on flattened outputs; the fake
    driver's flat dict round-trips unchanged."""
    outputs = flatten_numeric(_wave(3.0, 2.0))
    spec = CrossoverSpec(along="x", metric="a", minus="b")
    assert spec.signal(outputs) == pytest.approx(0.0)
