"""Tests for the report formatting helpers."""

from __future__ import annotations

from repro.harness import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [("x", 1), ("yyyy", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) >= 5 for line in lines)

    def test_title_included(self):
        text = format_table(["a"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [(1234.5678,), (0.123456,), (12.3456,), (0.0,)])
        assert "1235" in text
        assert "0.123" in text
        assert "12.35" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2  # header + rule


class TestFormatSeries:
    def test_basic(self):
        text = format_series("lat", [(0.0, 10.0), (1.0, 20.0)], unit="us")
        assert "lat (us):" in text
        assert len(text.splitlines()) == 3

    def test_no_unit(self):
        text = format_series("x", [(0.0, 1.0)])
        assert text.splitlines()[0] == "x:"
