"""A driver whose middle point raises (for fail-fast tests)."""

from __future__ import annotations

from typing import Dict

from repro.harness.parallel import Sweep, merge_rows
from tests.harness.fake_experiments import _calc, _explode


def sweep(n: int = 3) -> Sweep:
    sw = Sweep("fake-poisoned")
    for i in range(n):
        fn = _explode if i == 1 else _calc
        sw.point(fn, label=f"p={i}", value=i)
    return sw


def finalize(results) -> Dict[str, object]:
    return {"experiment": "poisoned", "rows": merge_rows(results)}


def run(n: int = 3, jobs: int = 1, cache=None, pool=None):
    return finalize(sweep(n=n).run(jobs=jobs, cache=cache, pool=pool))


def summarize(results) -> str:
    return "poisoned"
