"""Integration tests for the KV cluster builder."""

from __future__ import annotations

import pytest

from repro.harness.kvcluster import KvCluster, KvClusterConfig


def small_cluster(**kwargs):
    defaults = dict(scheme="gimbal", condition="clean", num_jbofs=1, ssds_per_jbof=2)
    defaults.update(kwargs)
    return KvCluster(KvClusterConfig(**defaults))


class TestKvCluster:
    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            KvClusterConfig(scheme="bogus")

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            KvClusterConfig(num_jbofs=0)

    def test_load_and_run(self):
        cluster = small_cluster()
        cluster.add_instance("db0", "A", record_count=256, concurrency=2)
        cluster.load_all()
        assert cluster.runners[0].loaded
        results = cluster.run(warmup_us=50_000, measure_us=150_000)
        assert results["total_kops"] > 0
        assert results["instances"][0]["kops"] > 0

    def test_loaded_keys_are_readable(self):
        cluster = small_cluster()
        runner = cluster.add_instance("db0", "C", record_count=128, concurrency=2)
        cluster.load_all()
        for key in range(128):
            assert runner.tree.contains(key)

    def test_multiple_instances_share_backends(self):
        cluster = small_cluster()
        a = cluster.add_instance("db0", "A", record_count=128)
        b = cluster.add_instance("db1", "B", record_count=128)
        assert set(a.tree.store.backends) == set(b.tree.store.backends)
        cluster.load_all()

    def test_flow_control_toggle_changes_policy(self):
        from repro.fabric.policies import CreditClientPolicy, UnlimitedClientPolicy

        with_fc = small_cluster(flow_control=True)
        without_fc = small_cluster(flow_control=False)
        runner_fc = with_fc.add_instance("db0", "A", record_count=64)
        runner_nofc = without_fc.add_instance("db0", "A", record_count=64)
        backend_fc = next(iter(runner_fc.tree.store.backends.values()))
        backend_nofc = next(iter(runner_nofc.tree.store.backends.values()))
        assert isinstance(backend_fc.session.policy, CreditClientPolicy)
        assert isinstance(backend_nofc.session.policy, UnlimitedClientPolicy)

    def test_load_balance_toggle(self):
        cluster = small_cluster(load_balance=False)
        runner = cluster.add_instance("db0", "A", record_count=64)
        assert runner.tree.store.load_balance_reads is False

    def test_gimbal_credits_flow_to_backends(self):
        cluster = small_cluster()
        runner = cluster.add_instance("db0", "A", record_count=256)
        cluster.load_all()
        credits = [backend.credit for backend in runner.tree.store.backends.values()]
        assert any(credit > 0 for credit in credits)
