"""Integration tests for the KV cluster builder."""

from __future__ import annotations

import pytest

from repro.harness.kvcluster import KvCluster, KvClusterConfig


def small_cluster(**kwargs):
    defaults = dict(scheme="gimbal", condition="clean", num_jbofs=1, ssds_per_jbof=2)
    defaults.update(kwargs)
    return KvCluster(KvClusterConfig(**defaults))


class TestKvCluster:
    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            KvClusterConfig(scheme="bogus")

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            KvClusterConfig(num_jbofs=0)

    def test_load_and_run(self):
        cluster = small_cluster()
        cluster.add_instance("db0", "A", record_count=256, concurrency=2)
        cluster.load_all()
        assert cluster.runners[0].loaded
        results = cluster.run(warmup_us=50_000, measure_us=150_000)
        assert results["total_kops"] > 0
        assert results["instances"][0]["kops"] > 0

    def test_loaded_keys_are_readable(self):
        cluster = small_cluster()
        runner = cluster.add_instance("db0", "C", record_count=128, concurrency=2)
        cluster.load_all()
        for key in range(128):
            assert runner.tree.contains(key)

    def test_multiple_instances_share_backends(self):
        cluster = small_cluster()
        a = cluster.add_instance("db0", "A", record_count=128)
        b = cluster.add_instance("db1", "B", record_count=128)
        assert set(a.tree.store.backends) == set(b.tree.store.backends)
        cluster.load_all()

    def test_flow_control_toggle_changes_policy(self):
        from repro.fabric.policies import CreditClientPolicy, UnlimitedClientPolicy

        with_fc = small_cluster(flow_control=True)
        without_fc = small_cluster(flow_control=False)
        runner_fc = with_fc.add_instance("db0", "A", record_count=64)
        runner_nofc = without_fc.add_instance("db0", "A", record_count=64)
        backend_fc = next(iter(runner_fc.tree.store.backends.values()))
        backend_nofc = next(iter(runner_nofc.tree.store.backends.values()))
        assert isinstance(backend_fc.session.policy, CreditClientPolicy)
        assert isinstance(backend_nofc.session.policy, UnlimitedClientPolicy)

    def test_load_balance_toggle(self):
        cluster = small_cluster(load_balance=False)
        runner = cluster.add_instance("db0", "A", record_count=64)
        assert runner.tree.store.load_balance_reads is False

    def test_gimbal_credits_flow_to_backends(self):
        cluster = small_cluster()
        runner = cluster.add_instance("db0", "A", record_count=256)
        cluster.load_all()
        credits = [backend.credit for backend in runner.tree.store.backends.values()]
        assert any(credit > 0 for credit in credits)


def drain_population(cluster, **kwargs):
    from repro.workloads.population import TenantPopulation

    defaults = dict(tenants=4, horizon_us=150_000.0, churn=0.6, seed=5)
    defaults.update(kwargs)
    return cluster.run_population(TenantPopulation(**defaults).generate())


class TestChurn:
    def test_departure_releases_everything(self):
        cluster = small_cluster()
        total = cluster.global_allocator.total_available_megas
        runner = cluster.add_instance("db0", "A", record_count=128, concurrency=2)
        runner.load(runner.start)
        cluster.sim.run(until_us=60_000.0)
        done = []
        cluster.depart_instance("db0", on_done=done.append)
        cluster.sim.run(until_us=cluster.sim.now + 100_000.0)
        assert done and done[0]["kops"] > 0
        assert "db0" not in cluster.instances
        assert cluster.runners == []
        assert cluster.global_allocator.total_available_megas == total
        assert cluster.tenants_departed == 1
        # All per-SSD session lists shrank back to empty.
        assert all(not lst for lst in cluster._backends_by_ssd.values())

    def test_departed_name_can_rearrive(self):
        cluster = small_cluster()
        runner = cluster.add_instance("db0", "A", record_count=64, concurrency=1)
        runner.load(runner.start)
        cluster.sim.run(until_us=40_000.0)
        cluster.depart_instance("db0")
        cluster.sim.run(until_us=cluster.sim.now + 100_000.0)
        assert "db0" not in cluster.instances
        again = cluster.add_instance("db0", "B", record_count=64, concurrency=1)
        loaded = []
        again.load(lambda: loaded.append(cluster.sim.now))
        cluster.sim.run(until_us=cluster.sim.now + 100_000.0)
        assert loaded
        assert cluster.tenants_arrived == 2

    def test_double_departure_rejected(self):
        cluster = small_cluster()
        cluster.add_instance("db0", "A", record_count=64)
        cluster.depart_instance("db0")
        with pytest.raises(ValueError):
            cluster.depart_instance("db0")

    def test_duplicate_instance_rejected(self):
        cluster = small_cluster()
        cluster.add_instance("db0", "A", record_count=64)
        with pytest.raises(ValueError):
            cluster.add_instance("db0", "B", record_count=64)

    def test_run_population_needs_empty_rack(self):
        cluster = small_cluster()
        cluster.add_instance("db0", "A", record_count=64)
        with pytest.raises(RuntimeError):
            drain_population(cluster)

    def test_population_drains_without_leaks(self):
        cluster = small_cluster()
        out = drain_population(cluster)
        assert len(out["tenants"]) == 4
        assert out["megas_leaked"] == 0
        assert out["megas_allocated"] == out["megas_freed"] > 0
        assert out["peak_tenants"] >= 1
        assert cluster.instances == {}
        for tenant in out["tenants"]:
            assert tenant["departed_us"] > tenant["arrived_us"]

    def test_population_byte_identical_across_runs(self):
        import json

        def once():
            out = drain_population(small_cluster())
            return json.dumps(out, sort_keys=True)

        assert once() == once()

    def test_rack_metrics_registered(self):
        from repro.obs import Registry

        cluster = small_cluster()
        registry = Registry()
        cluster.register_metrics(registry)
        drain_population(cluster, tenants=2, horizon_us=80_000.0)
        sample = registry.snapshot()
        assert sample["rack.active_tenants"] == 0
        assert sample["rack.tenants_arrived"] == 2
        assert sample["rack.tenants_departed"] == 2
        assert sample["rack.megas_available"] == sample["rack.megas_total"]
        assert sample["rack.megas_allocated"] == sample["rack.megas_freed"] > 0
        assert sample["rack.peak_megas_in_use"] > 0
