"""Tests for the suite orchestrator: cost model, dispatch plan, runner.

The load-bearing contract: ``run_suite`` may schedule points in any
order it likes (LPT, batched, streamed across experiments), but every
experiment's result must stay byte-identical to the serial-experiment
baseline ``run_suite_serial``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.harness.cache import ResultCache
from repro.harness.orchestrator import (
    DEFAULT_POINT_COST_S,
    SUITE_JOURNAL_NAME,
    CostModel,
    ExperimentSpec,
    _accepted_kwargs,
    _Task,
    plan_dispatch,
    run_suite,
    run_suite_serial,
    suite_experiments,
)
from repro.harness.parallel import SweepPoint, WorkerPool
from tests.harness.fake_experiments import _calc, _negate

ALPHA = ExperimentSpec(
    name="alpha", module_path="tests.harness.fake_experiments", kwargs={"n": 5, "scale": 3}
)
BETA = ExperimentSpec(name="beta", module_path="tests.harness.fake_experiments_beta", kwargs={})
POISONED = ExperimentSpec(
    name="poisoned", module_path="tests.harness.fake_experiments_poisoned", kwargs={}
)
LEGACY = ExperimentSpec(
    name="legacy", module_path="tests.harness.fake_experiments_legacy", kwargs={}
)


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True)


class TestAcceptedKwargs:
    def test_filters_to_signature(self):
        def fn(a, b=1):
            return a, b

        assert _accepted_kwargs(fn, {"a": 1, "b": 2, "c": 3}) == {"a": 1, "b": 2}

    def test_var_keyword_accepts_everything(self):
        def fn(**kwargs):
            return kwargs

        assert _accepted_kwargs(fn, {"a": 1, "zz": 9}) == {"a": 1, "zz": 9}

    def test_no_matching_params_yields_empty(self):
        def fn():
            return None

        assert _accepted_kwargs(fn, {"a": 1}) == {}


class TestCostModel:
    POINT = SweepPoint(index=0, label="v=0", fn=_calc, kwargs={"value": 0})

    def test_no_store_uses_default(self):
        model = CostModel.from_cache(None)
        assert model.predict(self.POINT) == DEFAULT_POINT_COST_S

    def test_empty_cache_uses_default(self, tmp_path):
        model = CostModel.from_cache(ResultCache(tmp_path / "cache"))
        assert model.predict(self.POINT) == DEFAULT_POINT_COST_S

    def test_prior_beats_default(self, tmp_path):
        model = CostModel.from_cache(
            ResultCache(tmp_path / "cache"), priors={"alpha": 0.5}
        )
        assert model.predict(self.POINT, experiment="alpha") == 0.5
        assert model.predict(self.POINT, experiment="other") == DEFAULT_POINT_COST_S

    def test_exact_fingerprint_beats_fn_mean(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        store.store(self.POINT, {"value": 0}, elapsed_s=3.25)
        other = SweepPoint(index=1, label="v=9", fn=_calc, kwargs={"value": 9})
        store.store(other, {"value": 9}, elapsed_s=1.25)
        model = CostModel.from_cache(store, priors={"alpha": 99.0})
        # Same fn+kwargs: the recorded time itself.
        assert model.predict(self.POINT, experiment="alpha") == pytest.approx(3.25)
        # Same fn, new kwargs: mean of the fn's recorded times.
        fresh = SweepPoint(index=2, label="v=5", fn=_calc, kwargs={"value": 5})
        assert model.predict(fresh, experiment="alpha") == pytest.approx((3.25 + 1.25) / 2)
        # Different fn entirely: falls through to the prior.
        alien = SweepPoint(index=3, label="n=1", fn=_negate, kwargs={"value": 1})
        assert model.predict(alien, experiment="alpha") == 99.0

    def test_corrupt_journal_entries_degrade_gracefully(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        store.store(self.POINT, {"value": 0}, elapsed_s=2.0)
        # Corrupt one entry file, drop garbage JSON beside the rest.
        entry_files = list(store.root.glob("*.json"))
        entry_files[0].write_text("{not json", encoding="utf-8")
        (store.root / ("f" * 64 + ".json")).write_text('{"no": "fingerprint"}')
        model = CostModel.from_cache(store)  # must not raise
        assert model.predict(self.POINT) == DEFAULT_POINT_COST_S

    def test_entries_blowing_up_never_raises(self, tmp_path):
        class _Hostile(ResultCache):
            def entries(self):
                raise RuntimeError("disk on fire")

        model = CostModel.from_cache(_Hostile(tmp_path / "cache"))
        assert model.predict(self.POINT) == DEFAULT_POINT_COST_S

    def test_negative_or_missing_elapsed_ignored(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        store.store(self.POINT, {"value": 0}, elapsed_s=-5.0)
        model = CostModel.from_cache(store)
        assert model.predict(self.POINT) == DEFAULT_POINT_COST_S


class TestPlanDispatch:
    @staticmethod
    def _task(exp, index, cost):
        point = SweepPoint(index=index, label=f"p{exp}.{index}", fn=_calc, kwargs={"value": index})
        return _Task(exp=exp, point=point, cost=cost)

    def test_expensive_points_dispatch_first_as_singletons(self):
        tasks = [self._task(0, 0, 1.0), self._task(0, 1, 5.0), self._task(1, 0, 3.0)]
        units = plan_dispatch(tasks, batch_cost_s=0.25)
        assert [[t.cost for t in unit] for unit in units] == [[5.0], [3.0], [1.0]]

    def test_cheap_points_batch_up_to_max(self):
        tasks = [self._task(0, i, 0.01) for i in range(10)]
        units = plan_dispatch(tasks, batch_cost_s=0.25, batch_max=4)
        assert [len(unit) for unit in units] == [4, 4, 2]

    def test_batch_max_one_disables_batching(self):
        tasks = [self._task(0, i, 0.01) for i in range(3)]
        units = plan_dispatch(tasks, batch_cost_s=0.25, batch_max=1)
        assert [len(unit) for unit in units] == [1, 1, 1]

    def test_plan_is_deterministic_under_ties(self):
        tasks = [self._task(exp, i, 2.0) for exp in range(2) for i in range(3)]
        first = plan_dispatch(tasks)
        second = plan_dispatch(list(reversed(tasks)))
        key = lambda units: [[(t.exp, t.point.index) for t in u] for u in units]
        assert key(first) == key(second)
        # Cost ties break on declaration order: exp ordinal, then index.
        assert key(first)[0] == [(0, 0)]


class TestSuiteExperiments:
    def test_quick_kwargs_come_from_registry(self):
        specs = suite_experiments(quick=True)
        assert len(specs) >= 20
        by_name = {spec.name: spec for spec in specs}
        assert "fig04" in by_name
        assert by_name["fig04"].kwargs  # quick mode scales something down

    def test_full_mode_has_no_kwarg_overrides(self):
        specs = suite_experiments(quick=False, names=["fig04"])
        assert len(specs) == 1
        assert specs[0].kwargs == {}

    def test_names_preserve_registry_order_and_dedupe(self):
        all_names = [spec.name for spec in suite_experiments()]
        specs = suite_experiments(names=["table2", "fig04", "table2"])
        names = [spec.name for spec in specs]
        assert sorted(names, key=all_names.index) == names
        assert len(names) == 2

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="nope"):
            suite_experiments(names=["nope"])


class TestRunSuite:
    def test_matches_serial_baseline(self):
        suite = run_suite([ALPHA, BETA], jobs=1, cache=False)
        serial = run_suite_serial([ALPHA, BETA], cache=False)
        assert _canonical(suite.results) == _canonical(serial)
        assert suite.points_total == 8
        assert [run.name for run in suite.experiments] == ["alpha", "beta"]

    def test_matches_serial_with_shared_pool(self, tmp_path):
        serial = run_suite_serial([ALPHA, BETA], cache=False)
        with WorkerPool(1) as pool:
            cold = run_suite([ALPHA, BETA], pool=pool, cache=tmp_path / "cache")
            warm = run_suite([ALPHA, BETA], pool=pool, cache=tmp_path / "cache")
        assert _canonical(cold.results) == _canonical(serial)
        assert _canonical(warm.results) == _canonical(serial)
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.points_total

    def test_report_and_journal(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with obs.capture() as session:
            suite = run_suite([ALPHA], jobs=1, cache=cache_dir)
        report = suite.report()
        assert report["experiments"] == 1
        assert report["points_total"] == 5
        assert report["per_experiment"][0]["name"] == "alpha"
        assert "stolen_idle_s" in report and "batches" in report
        assert session.registry.counter("suite.points_done").value == 5
        journal = (cache_dir / SUITE_JOURNAL_NAME).read_text().splitlines()
        assert len(journal) == 1
        record = json.loads(journal[0])
        assert record["points_total"] == 5
        assert record["cache"]["misses"] == 5

    def test_progress_events_stream(self):
        events = []
        run_suite(
            [ALPHA, BETA],
            jobs=1,
            cache=False,
            progress=lambda event, payload: events.append((event, payload)),
        )
        kinds = [event for event, _ in events]
        assert kinds.count("point") == 8
        assert kinds.count("experiment") == 2
        assert kinds[-1] == "suite"
        # Each experiment event fires after its last point, with its name.
        exp_names = [p["experiment"] for e, p in events if e == "experiment"]
        assert exp_names == ["alpha", "beta"]

    def test_legacy_module_without_sweep_rejected(self):
        with pytest.raises(TypeError, match="declarative sweep"):
            run_suite([LEGACY], jobs=1, cache=False)

    def test_point_error_propagates(self):
        with pytest.raises(RuntimeError, match="fake point 1 exploded"):
            run_suite([ALPHA, POISONED], jobs=1, cache=False)

    def test_fully_cached_experiment_finalizes_without_dispatch(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_suite([ALPHA], jobs=1, cache=cache_dir)
        events = []
        suite = run_suite(
            [ALPHA],
            jobs=1,
            cache=cache_dir,
            progress=lambda event, payload: events.append(event),
        )
        assert suite.cache_hits == 5
        assert suite.experiments[0].computed == 0
        assert events == ["experiment", "suite"]

    def test_real_drivers_match_their_run_entrypoints(self):
        # Smallest real experiments: the property matrix and fig04 quick.
        specs = suite_experiments(names=["table2"])
        suite = run_suite(specs, jobs=1, cache=False)
        serial = run_suite_serial(specs, cache=False)
        assert _canonical(suite.results) == _canonical(serial)


class _SyntheticCosts(CostModel):
    """Assign drawn costs to points by expansion order (stable per run)."""

    def __init__(self, costs):
        super().__init__()
        self._costs = list(costs)
        self._next = 0

    def predict(self, point, experiment=None):
        cost = self._costs[self._next % len(self._costs)]
        self._next += 1
        return cost


class TestSchedulingNeverChangesResults:
    """Satellite (d): byte-identity under randomized dispatch plans."""

    REFERENCE = None

    @classmethod
    def _reference(cls):
        if cls.REFERENCE is None:
            cls.REFERENCE = _canonical(run_suite_serial([ALPHA, BETA], cache=False))
        return cls.REFERENCE

    @settings(max_examples=30, deadline=None)
    @given(
        costs=st.lists(
            st.floats(min_value=1e-4, max_value=30.0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=8,
        ),
        batch_cost_s=st.floats(min_value=0.0, max_value=40.0),
        batch_max=st.integers(min_value=1, max_value=12),
    )
    def test_random_costs_and_batching_preserve_results(
        self, costs, batch_cost_s, batch_max
    ):
        suite = run_suite(
            [ALPHA, BETA],
            jobs=1,
            cache=False,
            cost_model=_SyntheticCosts(costs),
            batch_cost_s=batch_cost_s,
            batch_max=batch_max,
        )
        assert _canonical(suite.results) == self._reference()

    POOL = None

    @classmethod
    def setup_class(cls):
        cls.POOL = WorkerPool(1)

    @classmethod
    def teardown_class(cls):
        cls.POOL.close()
        cls.POOL = None

    @settings(max_examples=8, deadline=None)
    @given(batch_max=st.integers(min_value=1, max_value=12))
    def test_pool_reuse_across_examples_preserves_results(self, batch_max):
        suite = run_suite([ALPHA, BETA], pool=self.POOL, cache=False, batch_max=batch_max)
        assert _canonical(suite.results) == self._reference()

class TestCostModelSurrogateTier:
    """Tier 2: a per-fn surrogate over journal records answers unseen
    kwargs; every failure mode degrades to the tiers below, never
    raises."""

    @staticmethod
    def _warm(tmp_path, n=10):
        store = ResultCache(tmp_path / "cache")
        for i in range(n):
            point = SweepPoint(index=i, label=f"v={i}", fn=_calc, kwargs={"value": i})
            store.store(point, {"value": i}, elapsed_s=0.1 * (i + 1))
        return store

    @staticmethod
    def _fn_name():
        return f"{_calc.__module__}:{_calc.__qualname__}"

    def test_unseen_kwargs_hit_surrogate_not_fn_mean(self, tmp_path):
        model = CostModel.from_cache(self._warm(tmp_path))
        fresh = SweepPoint(index=99, label="v=99", fn=_calc, kwargs={"value": 99})
        predicted = model.predict(fresh)
        assert model.tier_hits["surrogate"] == 1
        assert model.tier_hits["by_fn"] == 0
        assert predicted >= 0.0
        # An exact replay still short-circuits at tier 1.
        exact = SweepPoint(index=0, label="v=0", fn=_calc, kwargs={"value": 0})
        model.predict(exact)
        assert model.tier_hits["exact"] == 1

    def test_surrogate_tracks_kwargs_scaling(self, tmp_path):
        # elapsed grows with value; the flat per-fn mean cannot see that.
        model = CostModel.from_cache(self._warm(tmp_path, n=16))
        lo = model.predict(SweepPoint(index=0, label="a", fn=_calc, kwargs={"value": 1.5}))
        hi = model.predict(SweepPoint(index=1, label="b", fn=_calc, kwargs={"value": 14.5}))
        assert hi > lo

    def test_below_min_records_falls_back_to_fn_mean(self, tmp_path):
        model = CostModel.from_cache(self._warm(tmp_path, n=4))
        assert model.surrogates == {}
        fresh = SweepPoint(index=77, label="v=77", fn=_calc, kwargs={"value": 77})
        model.predict(fresh)
        assert model.tier_hits["by_fn"] == 1

    def test_surrogate_flag_disables_training(self, tmp_path):
        model = CostModel.from_cache(self._warm(tmp_path), surrogate=False)
        assert model.surrogates == {}

    def test_numpyless_training_uses_knn_fallback(self, tmp_path, monkeypatch):
        from repro.harness import surrogate as surrogate_mod

        monkeypatch.setattr(surrogate_mod, "_HAVE_NUMPY", False)
        model = CostModel.from_cache(self._warm(tmp_path))
        assert model.surrogates[self._fn_name()].backend == "knn"
        fresh = SweepPoint(index=50, label="v=50", fn=_calc, kwargs={"value": 50})
        assert model.predict(fresh) >= 0.0
        assert model.tier_hits["surrogate"] == 1

    def test_hostile_surrogate_degrades_to_fn_mean(self):
        class _Hostile:
            def predict(self, kwargs_list):
                raise RuntimeError("model on fire")

        model = CostModel(
            by_fn={self._fn_name(): 2.5}, surrogates={self._fn_name(): _Hostile()}
        )
        point = SweepPoint(index=0, label="v=0", fn=_calc, kwargs={"value": 0})
        assert model.predict(point) == 2.5
        assert model.tier_hits["by_fn"] == 1
        assert model.tier_hits["surrogate"] == 0

    def test_corrupt_journal_degrades_to_lower_tiers(self, tmp_path):
        store = self._warm(tmp_path)
        (store.root / "journal.jsonl").write_text("garbage\n", encoding="utf-8")
        model = CostModel.from_cache(store)  # must not raise
        assert model.surrogates == {}


class TestSingleWorkerBypass:
    """jobs<=1 must never pay pool round-trips: the lazy executor stays
    unspawned and results match the serial path exactly."""

    def test_run_sweep_never_spawns_executor(self):
        from tests.harness.fake_experiments import sweep

        pool = WorkerPool(1)
        rows = sweep(n=4).run(pool=pool, cache=False)
        assert pool._executor is None
        assert rows == sweep(n=4).run(jobs=1, cache=False)

    def test_run_suite_never_spawns_executor(self):
        pool = WorkerPool(1)
        suite = run_suite([ALPHA, BETA], pool=pool, cache=False)
        assert pool._executor is None
        serial = run_suite_serial([ALPHA, BETA], cache=False)
        assert _canonical(suite.results) == _canonical(serial)
        pool.close()
