"""Second synthetic driver (distinct point fn) for suite tests."""

from __future__ import annotations

from typing import Dict

from repro.harness.parallel import Sweep, merge_rows
from tests.harness.fake_experiments import _negate


def sweep(n: int = 3, root_seed: int = 7) -> Sweep:
    sw = Sweep("fake-beta", root_seed=root_seed)
    for i in range(n):
        label = f"neg={i}"
        sw.point(_negate, label=label, value=i, seed=sw.seed_for(label))
    return sw


def finalize(results) -> Dict[str, object]:
    return {"experiment": "beta", "rows": merge_rows(results)}


def run(n: int = 3, root_seed: int = 7, jobs: int = 1, cache=None, pool=None):
    return finalize(sweep(n=n, root_seed=root_seed).run(jobs=jobs, cache=cache, pool=pool))


def summarize(results: Dict[str, object]) -> str:
    return f"beta: {len(results['rows'])} rows"
