"""A driver that predates the sweep()/finalize() protocol (run() only)."""

from __future__ import annotations


def run(jobs: int = 1, cache=None):
    return {"experiment": "legacy", "rows": [{"value": 1}]}


def summarize(results) -> str:
    return "legacy"
