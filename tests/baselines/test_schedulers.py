"""Unit tests for the baseline target-side schedulers."""

from __future__ import annotations

import pytest

from repro.baselines import FifoScheduler, FlashFqScheduler, ReflexScheduler
from repro.baselines.base import StorageScheduler
from repro.fabric import Network, NvmeOfInitiator, NvmeOfTarget
from repro.fabric.request import FabricRequest
from repro.sim import Simulator
from repro.ssd import NullDevice
from repro.ssd.commands import IoOp


class RecordingPipeline:
    """Minimal pipeline stub recording device submissions."""

    def __init__(self, sim):
        self.sim = sim
        self.submitted = []

    def device_submit(self, request):
        self.submitted.append(request)


def make_request(tenant, op=IoOp.READ, npages=1):
    return FabricRequest(tenant_id=tenant, op=op, lba=0, npages=npages)


class TestBaseInterface:
    def test_cannot_attach_twice(self, sim):
        scheduler = FifoScheduler()
        scheduler.attach(RecordingPipeline(sim))
        with pytest.raises(RuntimeError):
            scheduler.attach(RecordingPipeline(sim))

    def test_unattached_submit_rejected(self):
        scheduler = FifoScheduler()
        with pytest.raises(RuntimeError):
            scheduler.submit_to_device(make_request("t"))

    def test_invalid_weight_rejected(self, sim):
        scheduler = FifoScheduler()
        scheduler.attach(RecordingPipeline(sim))
        with pytest.raises(ValueError):
            scheduler.register_tenant("t", weight=0.0)

    def test_default_hooks(self, sim):
        scheduler = FifoScheduler()
        scheduler.attach(RecordingPipeline(sim))
        assert scheduler.credit_for("t") == 0
        assert scheduler.virtual_view() is None


class TestFifo:
    def test_passes_requests_straight_through(self, sim):
        scheduler = FifoScheduler()
        pipeline = RecordingPipeline(sim)
        scheduler.attach(pipeline)
        first = make_request("a")
        second = make_request("b")
        scheduler.enqueue(first)
        scheduler.enqueue(second)
        assert pipeline.submitted == [first, second]


class TestReflex:
    def test_static_cost_model(self, sim):
        scheduler = ReflexScheduler(write_cost_tokens=9.0)
        assert scheduler.request_cost(make_request("t", IoOp.READ, 1)) == 1.0
        assert scheduler.request_cost(make_request("t", IoOp.WRITE, 1)) == 9.0
        assert scheduler.request_cost(make_request("t", IoOp.READ, 32)) == 32.0

    def test_submits_while_tokens_available(self, sim):
        scheduler = ReflexScheduler()
        pipeline = RecordingPipeline(sim)
        scheduler.attach(pipeline)
        scheduler.register_tenant("a")
        scheduler.enqueue(make_request("a"))
        assert len(pipeline.submitted) == 1

    def test_paces_when_tokens_exhausted(self, sim):
        scheduler = ReflexScheduler(token_rate_per_us=0.001, max_tokens=1024.0)
        pipeline = RecordingPipeline(sim)
        scheduler.attach(pipeline)
        scheduler.register_tenant("a")
        # Burn through the initial bucket with expensive writes.
        for _ in range(10):
            scheduler.enqueue(make_request("a", IoOp.WRITE, 32))
        assert len(pipeline.submitted) < 10
        backlog = 10 - len(pipeline.submitted)
        sim.run(until_us=300_000_000.0)
        assert len(pipeline.submitted) == 10 or backlog == 0

    def test_round_robin_across_tenants(self, sim):
        scheduler = ReflexScheduler()
        pipeline = RecordingPipeline(sim)
        scheduler.attach(pipeline)
        for tenant in ("a", "b"):
            scheduler.register_tenant(tenant)
        for _ in range(6):
            scheduler.enqueue(make_request("a"))
        for _ in range(6):
            scheduler.enqueue(make_request("b"))
        first_six = [request.tenant_id for request in pipeline.submitted[:6]]
        assert set(first_six) == {"a", "b"} or len(pipeline.submitted) >= 6

    def test_undersized_bucket_rejected(self):
        with pytest.raises(ValueError):
            ReflexScheduler(write_cost_tokens=9.0, max_tokens=100.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ReflexScheduler(token_rate_per_us=0.0)


class TestFlashFq:
    def test_linear_cost_model_symmetric(self):
        scheduler = FlashFqScheduler(cost_base_us=25.0, cost_per_page_us=3.0)
        read = scheduler.request_cost(make_request("t", IoOp.READ, 8))
        write = scheduler.request_cost(make_request("t", IoOp.WRITE, 8))
        assert read == write == pytest.approx(49.0)

    def test_dispatch_throttle(self, sim):
        scheduler = FlashFqScheduler(depth=4)
        pipeline = RecordingPipeline(sim)
        scheduler.attach(pipeline)
        scheduler.register_tenant("a")
        for _ in range(10):
            scheduler.enqueue(make_request("a"))
        assert len(pipeline.submitted) == 4
        scheduler.notify_completion(pipeline.submitted[0])
        assert len(pipeline.submitted) == 5

    def test_fair_interleaving_of_backlogged_tenants(self, sim):
        scheduler = FlashFqScheduler(depth=1)
        pipeline = RecordingPipeline(sim)
        scheduler.attach(pipeline)
        for tenant in ("a", "b"):
            scheduler.register_tenant(tenant)
        for _ in range(4):
            scheduler.enqueue(make_request("a"))
        for _ in range(4):
            scheduler.enqueue(make_request("b"))
        # Drain one at a time; SFQ should alternate tenants.
        while len(pipeline.submitted) < 8:
            scheduler.notify_completion(pipeline.submitted[-1])
        tenants = [request.tenant_id for request in pipeline.submitted]
        # After the first two, strict alternation.
        assert tenants[2:] == ["a", "b"] * 3 or tenants[2:] == ["b", "a"] * 3

    def test_weighted_tenant_gets_more(self, sim):
        scheduler = FlashFqScheduler(depth=1)
        pipeline = RecordingPipeline(sim)
        scheduler.attach(pipeline)
        scheduler.register_tenant("heavy", weight=3.0)
        scheduler.register_tenant("light", weight=1.0)
        for _ in range(30):
            scheduler.enqueue(make_request("heavy"))
            scheduler.enqueue(make_request("light"))
        while len(pipeline.submitted) < 40:
            scheduler.notify_completion(pipeline.submitted[-1])
        heavy = sum(1 for r in pipeline.submitted if r.tenant_id == "heavy")
        light = len(pipeline.submitted) - heavy
        assert heavy > 1.5 * light

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FlashFqScheduler(depth=0)
        with pytest.raises(ValueError):
            FlashFqScheduler(cost_base_us=-1.0)


class TestSchedulerNames:
    @pytest.mark.parametrize(
        "cls,name",
        [
            (FifoScheduler, "vanilla"),
            (ReflexScheduler, "reflex"),
            (FlashFqScheduler, "flashfq"),
        ],
    )
    def test_names(self, cls, name):
        assert cls.name == name
        assert issubclass(cls, StorageScheduler)
