"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.ssd import SsdGeometry


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def small_geometry() -> SsdGeometry:
    """A small device (speeds up conditioning-heavy tests).

    The higher overprovisioning keeps enough slack blocks per channel
    for the GC watermarks despite the short channels.
    """
    return SsdGeometry(
        num_channels=4, blocks_per_channel=12, pages_per_block=64, overprovision=0.35
    )
