"""Regenerate the golden-figure JSON files.

Run after an *intentional* behaviour change (new scheduler logic, new
seed derivation, retuned device profile) and commit the diff::

    PYTHONPATH=src python tests/golden/regenerate.py

The configs here are the single source of truth -- the golden tests
import them, so the test always runs exactly what the files record.
"""

from __future__ import annotations

import json
from pathlib import Path

DATA_DIR = Path(__file__).resolve().parent / "data"

#: Small fixed-window, fixed-seed configs: big enough for stable
#: qualitative shape, small enough for tier-1 runtime.
GOLDEN_CONFIGS = {
    "fig02": {"measure_us": 20_000.0},
    "fig07": {
        "measure_us": 30_000.0,
        "warmup_us": 15_000.0,
        "workers_per_class": 2,
        "standalone_measure_us": 100_000.0,
    },
    "table1": {"measure_us": 20_000.0},
}


def main() -> None:
    from repro.harness.experiments import fig02_unloaded_latency as fig02
    from repro.harness.experiments import fig07_fairness as fig07
    from repro.harness.experiments import table1_overheads as table1

    modules = {"fig02": fig02, "fig07": fig07, "table1": table1}
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    for name, kwargs in GOLDEN_CONFIGS.items():
        results = modules[name].run(**kwargs)
        path = DATA_DIR / f"{name}.json"
        path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
