"""Golden figures under the DFTL backend at infinite cache.

The strongest end-to-end statement of the fidelity contract: flip
every device profile to the DFTL mapping-cache code path with a cache
large enough to hold any translation table, regenerate the golden
figures, and compare against the *same* checked-in goldens the
reference FTL is pinned to.  The cache code (lookup interception, LRU
bookkeeping, traffic draining, conditioning keying) all runs; the
figures must not move at all.

This test exists so a future change to the cache path cannot silently
perturb paper figures: the unit-level differential tests compare two
devices, this one compares whole experiment pipelines.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.experiments import common
from repro.harness.experiments import fig02_unloaded_latency as fig02
from repro.harness.experiments import table1_overheads as table1
from repro.ssd import clear_conditioning_cache, profile_by_name
from repro.ssd import profiles as profiles_module
from tests.golden.regenerate import GOLDEN_CONFIGS
from tests.golden.test_golden_figures import _assert_close, _load

#: Holds every translation table used by the golden configs.
INFINITE_CACHE = 1 << 22


@pytest.fixture
def dftl_profiles(monkeypatch):
    """Re-register every real profile with an infinite mapping cache."""
    patched = {}
    for name, profile in profiles_module._PROFILES.items():
        if name == "null":  # the null device has no FTL
            patched[name] = profile
        else:
            patched[name] = profile.with_overrides(map_cache_pages=INFINITE_CACHE)
    monkeypatch.setattr(profiles_module, "_PROFILES", patched)
    # Conditioning snapshots and standalone-bandwidth baselines are
    # keyed per-process; scrub them on both sides so reference state
    # never leaks in and DFTL state never leaks out.
    clear_conditioning_cache()
    monkeypatch.setattr(common, "_standalone_cache", {})
    yield
    clear_conditioning_cache()


@pytest.mark.parametrize("name", ["fig02", "table1"])
def test_golden_figures_identical_under_dftl(name, dftl_profiles):
    assert profile_by_name("dct983").map_cache_pages == INFINITE_CACHE
    module = {"fig02": fig02, "table1": table1}[name]
    kwargs = dict(GOLDEN_CONFIGS[name])
    results = json.loads(json.dumps(module.run(cache=False, **kwargs)))
    _assert_close(results, _load(name), name)
