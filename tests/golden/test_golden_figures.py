"""Golden-figure regression tests.

Each test regenerates one paper artefact (Figure 2, Figure 7, Table 1)
at a small fixed configuration and seed, and compares every value
against the checked-in golden JSON under ``tests/golden/data/``.

Comparisons are tolerance-based, not byte-exact: the simulation itself
is deterministic, but histogram bucket boundaries go through
``math.log``/``math.exp``, whose last-ulp rounding is allowed to
differ between libm implementations, shifting a percentile-derived
value by up to the bucket growth factor (~2%).  Counts, labels and
structure must match exactly.

Regenerating the goldens (after an intentional behaviour change)::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.experiments import fig02_unloaded_latency as fig02
from repro.harness.experiments import fig07_fairness as fig07
from repro.harness.experiments import table1_overheads as table1
from tests.golden.regenerate import GOLDEN_CONFIGS

DATA_DIR = Path(__file__).resolve().parent / "data"

#: Relative tolerance for values that pass through histogram buckets
#: or divide two measured quantities.
RTOL = 0.02


def _load(name: str) -> dict:
    return json.loads((DATA_DIR / f"{name}.json").read_text(encoding="utf-8"))


def _assert_close(actual, expected, path: str) -> None:
    """Structural comparison: exact for structure/strings/ints, rtol for floats."""
    assert type(actual) is type(expected), f"{path}: type {type(actual)} != {type(expected)}"
    if isinstance(expected, dict):
        assert sorted(actual) == sorted(expected), f"{path}: keys differ"
        for key in expected:
            _assert_close(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert len(actual) == len(expected), f"{path}: length differs"
        for index, (a, e) in enumerate(zip(actual, expected)):
            _assert_close(a, e, f"{path}[{index}]")
    elif isinstance(expected, float):
        tolerance = RTOL * max(abs(expected), 1e-9)
        assert abs(actual - expected) <= tolerance, (
            f"{path}: {actual!r} differs from golden {expected!r} "
            f"by more than rtol={RTOL}"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != golden {expected!r}"


@pytest.mark.parametrize("name", ["fig02", "fig07", "table1"])
def test_golden(name):
    module = {"fig02": fig02, "fig07": fig07, "table1": table1}[name]
    kwargs = GOLDEN_CONFIGS[name]
    results = json.loads(json.dumps(module.run(**kwargs)))  # normalise tuples
    _assert_close(results, _load(name), name)
