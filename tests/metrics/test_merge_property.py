"""Property tests for the metric merge operations.

The parallel sweep runner's determinism rests on one algebraic fact:
partitioning an observation stream into shards, aggregating each
shard, and merging the aggregates yields exactly the aggregate of the
concatenated stream.  Hypothesis searches for streams and partitions
that break it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import IntervalSeries, LatencyHistogram, PercentileTimeline

#: Latency-like values spanning the histograms' full dynamic range.
values = st.floats(min_value=0.0, max_value=2e7, allow_nan=False, allow_infinity=False)
#: (time, value) observations inside a few windows.
observations = st.tuples(
    st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False, allow_infinity=False),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
)


def partition(stream, n_shards, assignment):
    shards = [[] for _ in range(n_shards)]
    for index, item in enumerate(stream):
        shards[assignment[index % len(assignment)] % n_shards].append(item)
    return shards


@settings(max_examples=60, deadline=None)
@given(
    stream=st.lists(values, min_size=1, max_size=200),
    n_shards=st.integers(min_value=1, max_value=5),
    assignment=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=16),
)
def test_histogram_shard_merge_equals_direct(stream, n_shards, assignment):
    direct = LatencyHistogram()
    for value in stream:
        direct.record(value)

    merged = LatencyHistogram()
    for shard in partition(stream, n_shards, assignment):
        histogram = LatencyHistogram()
        for value in shard:
            histogram.record(value)
        merged.merge(histogram)

    assert merged.count == direct.count
    assert merged.min == direct.min
    assert merged.max == direct.max
    assert merged._counts == direct._counts
    # Regrouping float additions may shift the running sum by an ulp,
    # so the mean is compared to near-machine precision, not exactly.
    assert merged.total == pytest.approx(direct.total, rel=1e-12)
    # Percentiles depend only on bucket counts and min/max -- exact.
    for pct in (0.0, 50.0, 99.0, 100.0):
        assert merged.percentile(pct) == direct.percentile(pct)


@settings(max_examples=60, deadline=None)
@given(
    stream=st.lists(observations, min_size=1, max_size=200),
    n_shards=st.integers(min_value=1, max_value=5),
    assignment=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=16),
    mode=st.sampled_from(["sum", "mean"]),
)
def test_interval_series_shard_merge_equals_direct(stream, n_shards, assignment, mode):
    window_us = 100.0
    direct = IntervalSeries(window_us, mode)
    for when, value in stream:
        direct.record(when, value)

    merged = IntervalSeries(window_us, mode)
    for shard in partition(stream, n_shards, assignment):
        series = IntervalSeries(window_us, mode)
        for when, value in shard:
            series.record(when, value)
        merged.merge(series)

    # Sum mode reports interior idle windows as zeros; the merge must
    # reproduce those gap windows too, which is why the comparison is
    # on the emitted series rather than the internal dicts.  Window
    # starts and counts are exact; per-window float sums are compared
    # to near-machine precision (addition regrouping shifts ulps).
    merged_series = merged.series()
    direct_series = direct.series()
    assert [t for t, _ in merged_series] == [t for t, _ in direct_series]
    assert [v for _, v in merged_series] == pytest.approx(
        [v for _, v in direct_series], rel=1e-12, abs=1e-12
    )


@settings(max_examples=40, deadline=None)
@given(
    stream=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False, allow_infinity=False),
            values,
        ),
        min_size=1,
        max_size=120,
    ),
    n_shards=st.integers(min_value=1, max_value=4),
    assignment=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=16),
)
def test_timeline_shard_merge_equals_direct(stream, n_shards, assignment):
    window_us = 250.0
    direct = PercentileTimeline(window_us)
    for when, value in stream:
        direct.record(when, value)

    merged = PercentileTimeline(window_us)
    for shard in partition(stream, n_shards, assignment):
        timeline = PercentileTimeline(window_us)
        for when, value in shard:
            timeline.record(when, value)
        merged.merge(timeline)

    assert merged.window_count == direct.window_count
    for pct in (50.0, 99.0):
        assert merged.series(pct) == direct.series(pct)
    merged_means = merged.mean_series()
    direct_means = direct.mean_series()
    assert [t for t, _ in merged_means] == [t for t, _ in direct_means]
    assert [v for _, v in merged_means] == pytest.approx(
        [v for _, v in direct_means], rel=1e-12
    )


def test_last_mode_merge_is_refused():
    a = IntervalSeries(10.0, "last")
    b = IntervalSeries(10.0, "last")
    a.record(1.0, 5.0)
    b.record(2.0, 6.0)
    with pytest.raises(ValueError, match="order-dependent"):
        a.merge(b)


def test_mismatched_configuration_merges_are_refused():
    with pytest.raises(ValueError):
        IntervalSeries(10.0, "sum").merge(IntervalSeries(20.0, "sum"))
    with pytest.raises(ValueError):
        IntervalSeries(10.0, "sum").merge(IntervalSeries(10.0, "mean"))
    with pytest.raises(ValueError):
        PercentileTimeline(10.0).merge(PercentileTimeline(20.0))
    with pytest.raises(ValueError):
        LatencyHistogram(1.0, 1e7).merge(LatencyHistogram(1.0, 1e6))
