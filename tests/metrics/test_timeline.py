"""Tests for the windowed percentile timeline."""

from __future__ import annotations

import pytest

from repro.metrics.timeline import PercentileTimeline


class TestPercentileTimeline:
    def test_windows_partition_time(self):
        timeline = PercentileTimeline(window_us=100.0)
        timeline.record(50.0, 10.0)
        timeline.record(150.0, 20.0)
        timeline.record(151.0, 30.0)
        assert timeline.window_count == 2
        series = timeline.mean_series()
        assert series[0] == (0.0, pytest.approx(10.0))
        assert series[1] == (100.0, pytest.approx(25.0))

    def test_percentile_series(self):
        timeline = PercentileTimeline(window_us=100.0)
        for value in range(1, 101):
            timeline.record(10.0, float(value))
        p99 = timeline.series(99.0)
        assert len(p99) == 1
        assert p99[0][1] == pytest.approx(99.0, rel=0.05)

    def test_series_sorted_by_window(self):
        timeline = PercentileTimeline(window_us=10.0)
        timeline.record(95.0, 1.0)
        timeline.record(5.0, 1.0)
        starts = [t for t, _ in timeline.series(50.0)]
        assert starts == sorted(starts)

    def test_multi_series(self):
        timeline = PercentileTimeline(window_us=10.0)
        for value in range(100):
            timeline.record(1.0, float(value + 1))
        result = timeline.multi_series([50.0, 99.0])
        assert set(result) == {50.0, 99.0}
        assert result[99.0][0][1] >= result[50.0][0][1]

    def test_total_merges_all_windows(self):
        timeline = PercentileTimeline(window_us=10.0)
        timeline.record(1.0, 5.0)
        timeline.record(15.0, 15.0)
        merged = timeline.total()
        assert merged.count == 2
        assert merged.mean == pytest.approx(10.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            PercentileTimeline(window_us=0.0)
