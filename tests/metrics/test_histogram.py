"""Tests for the log-bucketed latency histogram."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import LatencyHistogram


class TestBasics:
    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(99.0) == 0.0

    def test_single_sample_percentiles_are_exact(self):
        histogram = LatencyHistogram()
        histogram.record(123.0)
        for pct in (0.0, 50.0, 99.0, 100.0):
            assert histogram.percentile(pct) == pytest.approx(123.0)

    def test_mean_is_exact(self):
        histogram = LatencyHistogram()
        for value in (10.0, 20.0, 30.0):
            histogram.record(value)
        assert histogram.mean == pytest.approx(20.0)

    def test_min_max_tracked_exactly(self):
        histogram = LatencyHistogram()
        for value in (5.0, 500.0, 50.0):
            histogram.record(value)
        assert histogram.min == 5.0
        assert histogram.max == 500.0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1.0)

    def test_out_of_range_percentile_rejected(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.percentile(101.0)
        with pytest.raises(ValueError):
            histogram.percentile(-0.1)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=10.0, max_value=5.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)


class TestAccuracy:
    def test_uniform_percentiles_within_tolerance(self):
        rng = random.Random(1)
        histogram = LatencyHistogram()
        samples = [rng.uniform(10.0, 10_000.0) for _ in range(20_000)]
        for sample in samples:
            histogram.record(sample)
        samples.sort()
        for pct in (50.0, 90.0, 99.0, 99.9):
            exact = samples[int(pct / 100.0 * len(samples)) - 1]
            estimate = histogram.percentile(pct)
            assert abs(estimate - exact) / exact < 0.05

    def test_values_above_range_clamped_but_counted(self):
        histogram = LatencyHistogram(min_value=1.0, max_value=100.0)
        histogram.record(1e9)
        assert histogram.count == 1
        assert histogram.mean == pytest.approx(1e9)

    def test_summary_keys(self):
        histogram = LatencyHistogram()
        histogram.record(10.0)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "p50", "p99", "p999", "max"}


class TestMerge:
    def test_merge_accumulates(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        for value in (10.0, 20.0):
            a.record(value)
        for value in (30.0, 40.0):
            b.record(value)
        a.merge(b)
        assert a.count == 4
        assert a.mean == pytest.approx(25.0)
        assert a.max == 40.0

    def test_merge_rejects_mismatched_configuration(self):
        a = LatencyHistogram(min_value=1.0)
        b = LatencyHistogram(min_value=2.0)
        with pytest.raises(ValueError):
            a.merge(b)


class TestProperties:
    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=300))
    def test_percentiles_monotonic(self, samples):
        """Property: percentile is non-decreasing in pct."""
        histogram = LatencyHistogram()
        for sample in samples:
            histogram.record(sample)
        values = [histogram.percentile(pct) for pct in (1, 25, 50, 75, 99, 100)]
        assert values == sorted(values)

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=300))
    def test_percentiles_within_observed_range(self, samples):
        """Property: every percentile lies within [min, max] of the data."""
        histogram = LatencyHistogram()
        for sample in samples:
            histogram.record(sample)
        for pct in (0, 10, 50, 90, 100):
            value = histogram.percentile(pct)
            assert histogram.min <= value <= histogram.max


class TestMergeConfiguration:
    """Regression: merge() used to compare only bucket count and
    min_value, so differently-shaped histograms whose bucket counts
    coincided merged silently into nonsense percentiles."""

    def test_merge_rejects_same_bucket_count_different_growth(self):
        a = LatencyHistogram(min_value=1.0, max_value=1e7, growth=1.02)
        # Squaring the growth and the range keeps log(max/min)/log(growth)
        # identical, so the bucket counts collide while the bucket
        # boundaries differ everywhere.
        b = LatencyHistogram(min_value=1.0, max_value=1e14, growth=1.02**2)
        assert a._num_buckets == b._num_buckets
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_rejects_different_max_value(self):
        a = LatencyHistogram(min_value=1.0, max_value=1e7, growth=1.02)
        b = LatencyHistogram(min_value=1.0, max_value=2e7, growth=1.02)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_accepts_identical_configuration(self):
        a = LatencyHistogram(min_value=2.0, max_value=1e6, growth=1.05)
        b = LatencyHistogram(min_value=2.0, max_value=1e6, growth=1.05)
        b.record(10.0)
        a.merge(b)
        assert a.count == 1
