"""Tests for the EWMA smoother."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import Ewma


class TestEwma:
    def test_first_sample_initialises(self):
        ewma = Ewma(alpha=0.5)
        assert not ewma.initialized
        ewma.update(100.0)
        assert ewma.value == 100.0
        assert ewma.initialized

    def test_value_before_samples_is_zero(self):
        assert Ewma(alpha=0.5).value == 0.0

    def test_update_formula(self):
        ewma = Ewma(alpha=0.5, initial=100.0)
        assert ewma.update(200.0) == pytest.approx(150.0)
        assert ewma.update(150.0) == pytest.approx(150.0)

    def test_alpha_weights_new_sample(self):
        fast = Ewma(alpha=0.9, initial=0.0)
        slow = Ewma(alpha=0.1, initial=0.0)
        fast.update(100.0)
        slow.update(100.0)
        assert fast.value > slow.value

    def test_constant_input_converges_to_constant(self):
        ewma = Ewma(alpha=0.3)
        for _ in range(200):
            ewma.update(42.0)
        assert ewma.value == pytest.approx(42.0)

    def test_reset(self):
        ewma = Ewma(alpha=0.5, initial=10.0)
        ewma.reset()
        assert not ewma.initialized
        ewma.reset(5.0)
        assert ewma.value == 5.0

    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.5])
    def test_invalid_alpha_rejected(self, alpha):
        with pytest.raises(ValueError):
            Ewma(alpha=alpha)

    def test_alpha_one_tracks_latest_sample(self):
        ewma = Ewma(alpha=1.0, initial=0.0)
        ewma.update(7.0)
        assert ewma.value == 7.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100))
    def test_value_bounded_by_sample_range(self, samples):
        """Property: an EWMA never escapes the [min, max] of its inputs."""
        ewma = Ewma(alpha=0.5)
        for sample in samples:
            ewma.update(sample)
        assert min(samples) - 1e-6 <= ewma.value <= max(samples) + 1e-6
