"""Tests for the fairness metrics (f-Util, deviation, Jain's index)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import f_util, jain_index, utilization_deviation


class TestFUtil:
    def test_ideal_share_scores_one(self):
        # A worker achieving exactly 1/N of its standalone max has f-Util 1.
        assert f_util(per_worker_bw=100.0, standalone_max_bw=1600.0, total_workers=16) == 1.0

    def test_overshare_scores_above_one(self):
        assert f_util(300.0, 1600.0, 16) > 1.0

    def test_starved_worker_scores_below_one(self):
        assert f_util(10.0, 1600.0, 16) < 1.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            f_util(1.0, 0.0, 4)
        with pytest.raises(ValueError):
            f_util(1.0, 100.0, 0)


class TestUtilizationDeviation:
    def test_ideal_is_zero(self):
        assert utilization_deviation(1.0) == 0.0

    def test_symmetric_around_ideal(self):
        assert utilization_deviation(0.5) == pytest.approx(utilization_deviation(1.5))

    def test_invalid_ideal_rejected(self):
        with pytest.raises(ValueError):
            utilization_deviation(1.0, ideal_util=0.0)


class TestJainIndex:
    def test_equal_allocations_score_one(self):
        assert jain_index([5.0, 5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_scores_one_over_n(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_bounded_between_one_over_n_and_one(self, allocations):
        """Property: 1/n <= Jain <= 1 for any non-negative allocation."""
        index = jain_index(allocations)
        assert 1.0 / len(allocations) - 1e-9 <= index <= 1.0 + 1e-9

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=0.01, max_value=100.0),
    )
    def test_scale_invariant(self, allocations, scale):
        """Property: Jain's index is invariant under scaling."""
        assert jain_index(allocations) == pytest.approx(
            jain_index([a * scale for a in allocations]), rel=1e-6
        )
