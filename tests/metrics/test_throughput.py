"""Tests for throughput accounting."""

from __future__ import annotations

import pytest

from repro.metrics import IntervalSeries, ThroughputMonitor
from repro.sim.units import MB, SEC


class TestThroughputMonitor:
    def test_zero_before_start(self):
        monitor = ThroughputMonitor()
        monitor.record(10.0, 4096)
        assert monitor.bandwidth_mbps(20.0) == 0.0
        assert monitor.iops(20.0) == 0.0

    def test_bandwidth_computation(self):
        monitor = ThroughputMonitor()
        monitor.start(0.0)
        monitor.record(1.0, 100 * MB)
        assert monitor.bandwidth_mbps(1.0 * SEC) == pytest.approx(100.0)

    def test_iops_computation(self):
        monitor = ThroughputMonitor()
        monitor.start(0.0)
        for i in range(500):
            monitor.record(float(i), 4096)
        assert monitor.iops(0.5 * SEC) == pytest.approx(1000.0)

    def test_records_before_window_discarded(self):
        monitor = ThroughputMonitor()
        monitor.start(100.0)
        monitor.record(50.0, MB)
        monitor.record(150.0, MB)
        assert monitor.ops == 1

    def test_restart_clears_counters(self):
        monitor = ThroughputMonitor()
        monitor.start(0.0)
        monitor.record(1.0, MB)
        monitor.start(10.0)
        assert monitor.bytes == 0
        assert monitor.ops == 0

    def test_zero_elapsed_returns_zero(self):
        monitor = ThroughputMonitor()
        monitor.start(5.0)
        monitor.record(5.0, MB)
        assert monitor.bandwidth_mbps(5.0) == 0.0


class TestIntervalSeries:
    def test_sum_mode(self):
        series = IntervalSeries(window_us=10.0, mode="sum")
        series.record(1.0, 5.0)
        series.record(2.0, 5.0)
        series.record(15.0, 3.0)
        assert series.series() == [(0.0, 10.0), (10.0, 3.0)]

    def test_mean_mode(self):
        series = IntervalSeries(window_us=10.0, mode="mean")
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.series() == [(0.0, 15.0)]

    def test_last_mode(self):
        series = IntervalSeries(window_us=10.0, mode="last")
        series.record(1.0, 10.0)
        series.record(9.0, 99.0)
        assert series.series() == [(0.0, 99.0)]

    def test_windows_sorted_even_when_recorded_out_of_order(self):
        series = IntervalSeries(window_us=10.0)
        series.record(25.0, 1.0)
        series.record(5.0, 2.0)
        starts = [t for t, _ in series.series()]
        assert starts == sorted(starts)

    def test_bandwidth_series(self):
        series = IntervalSeries(window_us=1.0 * SEC, mode="sum")
        series.record(0.5 * SEC, 100 * MB)
        points = series.bandwidth_series_mbps()
        assert points[0][1] == pytest.approx(100.0)

    def test_bandwidth_series_requires_sum_mode(self):
        series = IntervalSeries(window_us=10.0, mode="mean")
        with pytest.raises(ValueError):
            series.bandwidth_series_mbps()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            IntervalSeries(window_us=0.0)
        with pytest.raises(ValueError):
            IntervalSeries(window_us=1.0, mode="median")


class TestInteriorGaps:
    """Regression: sum-mode series used to splice out idle windows,
    so an idle second silently vanished from bandwidth timelines."""

    def test_sum_mode_emits_zero_for_interior_gap(self):
        series = IntervalSeries(window_us=10.0, mode="sum")
        series.record(5.0, 7.0)
        series.record(35.0, 3.0)
        assert series.series() == [
            (0.0, 7.0),
            (10.0, 0.0),
            (20.0, 0.0),
            (30.0, 3.0),
        ]

    def test_sum_mode_no_padding_outside_observed_range(self):
        series = IntervalSeries(window_us=10.0, mode="sum")
        series.record(25.0, 1.0)
        assert series.series() == [(20.0, 1.0)]

    def test_bandwidth_series_reads_zero_during_idle(self):
        series = IntervalSeries(window_us=1.0 * SEC, mode="sum")
        series.record(0.5 * SEC, 100 * MB)
        series.record(2.5 * SEC, 100 * MB)
        points = series.bandwidth_series_mbps()
        assert [t for t, _ in points] == [0.0, 1.0 * SEC, 2.0 * SEC]
        assert points[1][1] == 0.0

    def test_mean_mode_still_skips_empty_windows(self):
        series = IntervalSeries(window_us=10.0, mode="mean")
        series.record(5.0, 4.0)
        series.record(35.0, 8.0)
        assert series.series() == [(0.0, 4.0), (30.0, 8.0)]

    def test_last_mode_still_skips_empty_windows(self):
        series = IntervalSeries(window_us=10.0, mode="last")
        series.record(5.0, 4.0)
        series.record(35.0, 8.0)
        assert series.series() == [(0.0, 4.0), (30.0, 8.0)]
