"""Pipeline trim path: deallocate flows end-to-end without payload.

Regression tests for the throughput-attribution bug where
``SsdPipeline._send_response`` counted a trim's nominal LBA range into
``by_tenant_bytes`` even though a deallocate transfers no data.
"""

from __future__ import annotations

from repro.baselines import FifoScheduler
from repro.fabric import Network, NvmeOfInitiator, NvmeOfTarget, UnlimitedClientPolicy
from repro.ssd import NullDevice, SsdDevice, SsdGeometry, precondition_clean
from repro.ssd.commands import IoOp


def build_rig(sim, device=None):
    network = Network(sim)
    device = device or NullDevice(sim)
    target = NvmeOfTarget(
        sim, network, "jbof", {"ssd0": device}, scheduler_factory=FifoScheduler
    )
    initiator = NvmeOfInitiator(sim, network, "client")
    session = initiator.connect(
        "tenant-a", target, "ssd0", policy=UnlimitedClientPolicy()
    )
    pipeline = target.pipeline("ssd0")
    return device, pipeline, session


class TestTrimResponse:
    def test_trim_completes_and_routes_reply(self, sim):
        device, pipeline, session = build_rig(sim)
        done = []
        session.submit(IoOp.TRIM, 0, 64, on_complete=done.append)
        sim.run()
        assert len(done) == 1
        assert done[0].op is IoOp.TRIM
        assert done[0].e2e_latency_us > 0
        assert pipeline.stats.trims == 1
        assert device.stats.trim_commands == 1
        assert device.stats.trimmed_pages == 64
        # The reply route must be consumed, not leaked.
        assert pipeline._inflight_replies == 0

    def test_trim_does_not_count_into_tenant_bytes(self, sim):
        """A 64-page deallocate must not attribute 256 KiB of
        'throughput' to the tenant."""
        _, pipeline, session = build_rig(sim)
        session.submit(IoOp.READ, 0, 4, on_complete=lambda r: None)
        session.submit(IoOp.TRIM, 0, 64, on_complete=lambda r: None)
        sim.run()
        # Only the read's payload is attributed.
        assert pipeline.stats.by_tenant_bytes == {"tenant-a": 4 * 4096}
        assert pipeline.stats.read_bytes == 4 * 4096
        assert pipeline.stats.write_bytes == 0

    def test_trim_only_workload_attributes_zero_bytes(self, sim):
        _, pipeline, session = build_rig(sim)
        for _ in range(10):
            session.submit(IoOp.TRIM, 0, 8, on_complete=lambda r: None)
        sim.run()
        assert pipeline.stats.trims == 10
        assert pipeline.stats.by_tenant_bytes == {}

    def test_trim_books_no_channel_work(self, sim):
        """On a real SSD, deallocate is FTL metadata only: the
        channel-time horizons stay untouched."""
        geometry = SsdGeometry(
            num_channels=4, blocks_per_channel=12, pages_per_block=64, overprovision=0.35
        )
        device = SsdDevice(sim, geometry=geometry)
        precondition_clean(device)
        _, pipeline, session = build_rig(sim, device=device)
        done = []
        session.submit(IoOp.TRIM, 0, 32, on_complete=done.append)
        sim.run()
        assert len(done) == 1
        assert device._fg_horizon == [0.0] * geometry.num_channels
        assert device._wr_horizon == [0.0] * geometry.num_channels
        assert device.stats.trimmed_pages == 32
