"""Unit tests for client-side flow-control policy internals."""

from __future__ import annotations

import pytest

from repro.fabric.policies import (
    CreditClientPolicy,
    PardaClientPolicy,
    UnlimitedClientPolicy,
    WindowClientPolicy,
)


class FakeSession:
    """Just enough session surface for policy unit tests."""

    def __init__(self, sim):
        self.sim = sim
        self.inflight = 0


class FakeRequest:
    def __init__(self, latency=100.0, credit=0):
        self._latency = latency
        self.credit_grant = credit

    @property
    def e2e_latency_us(self):
        return self._latency


class TestWindowPolicy:
    def test_allow_tracks_inflight(self, sim):
        policy = WindowClientPolicy(window=2)
        session = FakeSession(sim)
        policy.bind(session)
        assert policy.allow()
        session.inflight = 2
        assert not policy.allow()

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowClientPolicy(window=0)


class TestCreditPolicy:
    def test_grants_update_budget(self, sim):
        policy = CreditClientPolicy(initial_credit=2)
        session = FakeSession(sim)
        policy.bind(session)
        session.inflight = 2
        assert not policy.allow()
        policy.on_complete(FakeRequest(credit=10))
        assert policy.credit_total == 10
        assert policy.allow()

    def test_zero_grant_keeps_previous_credit(self, sim):
        policy = CreditClientPolicy(initial_credit=4)
        policy.bind(FakeSession(sim))
        policy.on_complete(FakeRequest(credit=0))
        assert policy.credit_total == 4

    def test_invalid_initial_credit_rejected(self):
        with pytest.raises(ValueError):
            CreditClientPolicy(initial_credit=0)


class TestPardaPolicy:
    def _policy(self, **kwargs):
        defaults = dict(
            latency_threshold_us=1000.0, gamma=0.5, alpha=2.0, epoch_us=10.0,
            initial_window=8.0,
        )
        defaults.update(kwargs)
        return PardaClientPolicy(**defaults)

    def test_window_grows_when_latency_below_threshold(self, sim):
        policy = self._policy()
        policy.bind(FakeSession(sim))
        before = policy.window
        for _ in range(5):
            sim.at(sim.now + 20.0, lambda: None)
            sim.run()
            policy.on_complete(FakeRequest(latency=100.0))
        assert policy.window > before

    def test_window_shrinks_when_latency_above_threshold(self, sim):
        policy = self._policy()
        policy.bind(FakeSession(sim))
        before = policy.window
        for _ in range(5):
            sim.at(sim.now + 20.0, lambda: None)
            sim.run()
            policy.on_complete(FakeRequest(latency=10_000.0))
        assert policy.window < before

    def test_window_never_drops_below_one(self, sim):
        policy = self._policy()
        policy.bind(FakeSession(sim))
        for _ in range(50):
            sim.at(sim.now + 20.0, lambda: None)
            sim.run()
            policy.on_complete(FakeRequest(latency=1e6))
        assert policy.window >= 1.0
        assert policy.allow()  # at least one IO may fly

    def test_window_capped_at_max(self, sim):
        policy = self._policy(max_window=16.0)
        policy.bind(FakeSession(sim))
        for _ in range(50):
            sim.at(sim.now + 20.0, lambda: None)
            sim.run()
            policy.on_complete(FakeRequest(latency=1.0))
        assert policy.window <= 16.0

    def test_growth_bounded_by_doubling(self, sim):
        policy = self._policy()
        policy.bind(FakeSession(sim))
        before = policy.window
        sim.at(20.0, lambda: None)
        sim.run()
        policy.on_complete(FakeRequest(latency=1.0))
        assert policy.window <= 2 * before

    def test_updates_only_once_per_epoch(self, sim):
        policy = self._policy(epoch_us=1_000.0)
        policy.bind(FakeSession(sim))
        policy.on_complete(FakeRequest(latency=1.0))
        window_after_first = policy.window
        policy.on_complete(FakeRequest(latency=1.0))
        assert policy.window == window_after_first

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PardaClientPolicy(latency_threshold_us=0.0)
        with pytest.raises(ValueError):
            PardaClientPolicy(gamma=0.0)
        with pytest.raises(ValueError):
            PardaClientPolicy(epoch_us=-1.0)


class TestUnlimitedPolicy:
    def test_always_allows(self, sim):
        policy = UnlimitedClientPolicy()
        session = FakeSession(sim)
        session.inflight = 10**6
        policy.bind(session)
        assert policy.allow()

    def test_rebind_rejected(self, sim):
        policy = UnlimitedClientPolicy()
        policy.bind(FakeSession(sim))
        with pytest.raises(RuntimeError):
            policy.bind(FakeSession(sim))
