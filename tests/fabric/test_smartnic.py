"""Tests for the SmartNIC core model and CPU cost accounting."""

from __future__ import annotations

import pytest

from repro.fabric.smartnic import CYCLES_PER_US, SERVER_CPU, SMARTNIC_CPU, CpuCostModel, NicCore


class TestNicCore:
    def test_booking_advances_horizon(self, sim):
        core = NicCore(sim)
        done = core.book(5.0, tag="submit")
        assert done == 5.0
        assert core.busy_until == 5.0

    def test_consecutive_bookings_queue(self, sim):
        core = NicCore(sim)
        core.book(5.0)
        done = core.book(3.0)
        assert done == 8.0

    def test_booking_after_idle_starts_now(self, sim):
        core = NicCore(sim)
        core.book(1.0)
        sim.at(100.0, lambda: None)
        sim.run()
        done = core.book(2.0)
        assert done == 102.0

    def test_negative_cost_rejected(self, sim):
        core = NicCore(sim)
        with pytest.raises(ValueError):
            core.book(-1.0)

    def test_utilization(self, sim):
        core = NicCore(sim)
        core.book(25.0)
        assert core.utilization(100.0) == pytest.approx(0.25)
        assert core.utilization(0.0) == 0.0

    def test_tag_accounting(self, sim):
        core = NicCore(sim)
        core.book(2.0, tag="submit")
        core.book(4.0, tag="submit")
        core.book(1.0, tag="complete")
        cycles = core.mean_cycles_by_tag()
        assert cycles["submit"] == pytest.approx(3.0 * CYCLES_PER_US)
        assert cycles["complete"] == pytest.approx(1.0 * CYCLES_PER_US)


class TestCpuCostModel:
    def test_io_cost_composition(self):
        model = CpuCostModel("m", 1.0, 0.5, 0.1, 2.0)
        assert model.io_cost_us(npages=4, real_device=False) == pytest.approx(1.9)
        assert model.io_cost_us(npages=4, real_device=True) == pytest.approx(3.9)

    def test_smartnic_slower_than_server(self):
        smartnic = SMARTNIC_CPU.io_cost_us(npages=1, real_device=True)
        server = SERVER_CPU.io_cost_us(npages=1, real_device=True)
        assert smartnic > 2 * server

    def test_null_device_iops_anchor(self):
        """Vanilla SPDK drives ~937 KIOPS on one SmartNIC core against
        a NULL device (Table 1b): fixed cost ~1.07 us."""
        per_io = SMARTNIC_CPU.io_cost_us(npages=1, real_device=False)
        iops = 1e6 / per_io
        assert 800_000 < iops < 1_100_000
