"""Free-list pool correctness: no state leaks, no behavioural change.

The datapath fast path recycles :class:`FabricRequest` and
:class:`DeviceCommand` objects through module-level free lists.  Two
properties keep that safe:

* a recycled object is field-for-field identical to a freshly
  constructed one -- nothing from its previous life (timestamps,
  credit grants, reply routes, caller cookies) survives reacquisition;
* a run with recycling enabled produces byte-identical results to the
  same run with recycling disabled, so pooling is purely an allocation
  optimisation.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.request import (
    FabricRequest,
    acquire_request,
    release_request,
    request_pool_size,
)
from repro.harness.testbed import Testbed, TestbedConfig
from repro.ssd.commands import (
    DeviceCommand,
    IoOp,
    acquire_command,
    command_pool_size,
    release_command,
)
from repro.workloads import FioSpec

_REQUEST_FIELDS = [
    slot for slot in FabricRequest.__slots__ if slot != "request_id"
]
_COMMAND_FIELDS = [
    slot for slot in DeviceCommand.__slots__ if slot != "command_id"
]

_ops = st.sampled_from([IoOp.READ, IoOp.WRITE, IoOp.TRIM])
_lbas = st.integers(min_value=0, max_value=1 << 30)
_npages = st.integers(min_value=1, max_value=256)
_priorities = st.integers(min_value=-4, max_value=4)


def _dirty_request(request: FabricRequest) -> None:
    """Simulate a full life: stamp every mutable field a real IO touches."""
    request.t_client_submit = 1.0
    request.t_wire_submit = 2.0
    request.t_target_arrival = 3.0
    request.t_sched_enqueue = 4.0
    request.t_device_submit = 5.0
    request.t_device_complete = 6.0
    request.t_client_complete = 7.0
    request.credit_grant = 12345
    request.virtual_view = {"read_mbps": 1.0}
    request._reply = object()
    request._on_complete = lambda _request: None
    request.context = {"cookie": object()}


@given(
    tenant=st.text(min_size=1, max_size=8),
    op=_ops,
    lba=_lbas,
    npages=_npages,
    priority=_priorities,
)
@settings(max_examples=200, deadline=None)
def test_recycled_request_identical_to_fresh(tenant, op, lba, npages, priority):
    victim = acquire_request("stale-tenant", IoOp.WRITE, 7, 3, priority=2,
                             context="stale")
    stale_id = victim.request_id
    _dirty_request(victim)
    release_request(victim)
    assert request_pool_size() >= 1

    recycled = acquire_request(tenant, op, lba, npages, priority)
    assert recycled is victim  # LIFO pool: the dirtied object comes back
    fresh = FabricRequest(
        tenant_id=tenant, op=op, lba=lba, npages=npages, priority=priority
    )
    for name in _REQUEST_FIELDS:
        assert getattr(recycled, name) == getattr(fresh, name), (
            f"field {name!r} leaked across request reuse"
        )
    # A new id is drawn on every acquire; the fresh request constructed
    # just after it must have the next one.
    assert recycled.request_id != stale_id
    assert recycled.request_id < fresh.request_id
    release_request(recycled)


@given(op=_ops, lpn=_lbas, npages=_npages)
@settings(max_examples=200, deadline=None)
def test_recycled_command_identical_to_fresh(op, lpn, npages):
    victim = acquire_command(IoOp.WRITE, 99, 5, tag=object())
    victim.submit_time = 1.0
    victim.complete_time = 2.0
    release_command(victim)
    assert command_pool_size() >= 1

    recycled = acquire_command(op, lpn, npages)
    assert recycled is victim
    fresh = DeviceCommand(op, lpn, npages)
    for name in _COMMAND_FIELDS:
        assert getattr(recycled, name) == getattr(fresh, name), (
            f"field {name!r} leaked across command reuse"
        )
    assert recycled.command_id < fresh.command_id
    release_command(recycled)


def test_pool_validation_matches_constructor():
    # The pooled constructors re-validate arguments even when skipping
    # __post_init__, so a recycled acquire rejects exactly what a fresh
    # construction would.
    release_request(acquire_request("t", IoOp.READ, 0, 1))
    release_command(acquire_command(IoOp.READ, 0, 1))
    for lba, npages in ((-1, 1), (0, 0), (0, -2)):
        try:
            acquire_request("t", IoOp.READ, lba, npages)
            raise AssertionError("invalid IO range accepted")
        except ValueError:
            pass
    for lpn, npages in ((-1, 1), (0, 0)):
        try:
            acquire_command(IoOp.READ, lpn, npages)
            raise AssertionError("invalid command accepted")
        except ValueError:
            pass


def _interference_run(recycle: bool) -> str:
    testbed = Testbed(TestbedConfig(scheme="gimbal", condition="fragmented"))
    reader = testbed.add_worker(
        FioSpec("reader", io_pages=1, queue_depth=16, read_ratio=1.0),
        region_pages=2048,
    )
    writer = testbed.add_worker(
        FioSpec("writer", io_pages=32, queue_depth=4, read_ratio=0.0,
                pattern="sequential"),
        region_pages=2048,
    )
    for worker in (reader, writer):
        worker.session.recycle_requests = recycle
    results = testbed.run(warmup_us=20_000.0, measure_us=60_000.0)
    return json.dumps(results, sort_keys=True, default=repr)


def test_pooled_run_byte_identical_to_unpooled():
    assert _interference_run(recycle=True) == _interference_run(recycle=False)
