"""Tests for the link-level network model."""

from __future__ import annotations

import pytest

from repro.fabric import Network
from repro.sim import Simulator


@pytest.fixture
def network(sim):
    return Network(sim, bandwidth_bytes_per_us=1000.0, propagation_us=2.0, per_message_us=0.5)


class TestNetwork:
    def test_delivery_time_includes_all_components(self, sim, network):
        port = network.port("client")
        arrivals = []
        network.send(port, 1000, lambda: arrivals.append(sim.now))
        sim.run()
        # 0.5 per-message + 1000/1000 serialisation + 2.0 propagation.
        assert arrivals == [pytest.approx(3.5)]

    def test_sender_serialisation_queues(self, sim, network):
        port = network.port("client")
        arrivals = []
        network.send(port, 1000, lambda: arrivals.append(sim.now))
        network.send(port, 1000, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals[1] - arrivals[0] == pytest.approx(1.5)  # second waits for tx

    def test_different_senders_do_not_serialise(self, sim, network):
        a = network.port("a")
        b = network.port("b")
        arrivals = []
        network.send(a, 1000, lambda: arrivals.append(sim.now))
        network.send(b, 1000, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals[0] == arrivals[1]

    def test_per_sender_fifo_ordering(self, sim, network):
        port = network.port("client")
        order = []
        network.send(port, 5000, order.append, "big")
        network.send(port, 10, order.append, "small")
        sim.run()
        assert order == ["big", "small"]

    def test_port_is_cached_by_name(self, network):
        assert network.port("x") is network.port("x")

    def test_port_counters(self, sim, network):
        port = network.port("client")
        network.send(port, 100, lambda: None)
        network.send(port, 200, lambda: None)
        sim.run()
        assert port.bytes_sent == 300
        assert port.messages_sent == 2

    def test_args_passed_to_deliver(self, sim, network):
        got = []
        network.send(network.port("c"), 0, lambda a, b: got.append((a, b)), 1, 2)
        sim.run()
        assert got == [(1, 2)]

    def test_negative_size_rejected(self, network):
        with pytest.raises(ValueError):
            network.send(network.port("c"), -1, lambda: None)

    def test_invalid_configuration_rejected(self, sim):
        with pytest.raises(ValueError):
            Network(sim, bandwidth_bytes_per_us=0.0)
        with pytest.raises(ValueError):
            Network(sim, propagation_us=-1.0)

    def test_send_returns_arrival_time(self, sim, network):
        arrival = network.send(network.port("c"), 1000, lambda: None)
        assert arrival == pytest.approx(3.5)
