"""Tests for tenant disconnect and share redistribution."""

from __future__ import annotations

import pytest

from repro.baselines import FifoScheduler, FlashFqScheduler, ReflexScheduler
from repro.core import GimbalScheduler
from repro.fabric import CreditClientPolicy, Network, NvmeOfInitiator, NvmeOfTarget
from repro.ssd import NullDevice, SsdDevice, precondition_clean
from repro.ssd.commands import IoOp


def build(sim, scheduler_factory=GimbalScheduler, tenants=2):
    network = Network(sim)
    target = NvmeOfTarget(sim, network, "j", {"ssd0": NullDevice(sim)}, scheduler_factory)
    initiator = NvmeOfInitiator(sim, network, "c")
    sessions = [
        initiator.connect(f"t{i}", target, "ssd0") for i in range(tenants)
    ]
    return target, initiator, sessions


class TestDisconnect:
    def test_disconnect_removes_tenant(self, sim):
        target, initiator, sessions = build(sim)
        scheduler = target.pipelines["ssd0"].scheduler
        assert "t0" in scheduler.drr.tenants
        sessions[0].disconnect()
        assert "t0" not in scheduler.drr.tenants
        assert sessions[0] not in initiator.sessions

    def test_disconnect_with_inflight_rejected(self, sim):
        _, _, sessions = build(sim)
        sessions[0].submit(IoOp.READ, 0, 1)
        with pytest.raises(RuntimeError):
            sessions[0].disconnect()
        sim.run()
        sessions[0].disconnect()

    def test_slot_share_grows_when_tenants_leave(self, sim):
        target, _, sessions = build(sim, tenants=8)
        scheduler = target.pipelines["ssd0"].scheduler
        assert scheduler.drr.slot_limit == 1
        for session in sessions[:6]:
            session.disconnect()
        assert scheduler.drr.slot_limit == 4

    def test_remaining_tenants_keep_working(self, sim):
        target, _, sessions = build(sim, tenants=3)
        for session in sessions:
            session.submit(IoOp.READ, 0, 1)
        sim.run()
        sessions[0].disconnect()
        done = []
        sessions[1].submit(IoOp.READ, 0, 1, on_complete=done.append)
        sim.run()
        assert len(done) == 1

    @pytest.mark.parametrize(
        "factory", [FifoScheduler, ReflexScheduler, FlashFqScheduler]
    )
    def test_baseline_schedulers_support_disconnect(self, sim, factory):
        target, _, sessions = build(sim, scheduler_factory=factory)
        sessions[0].submit(IoOp.READ, 0, 1)
        sim.run()
        sessions[0].disconnect()
        done = []
        sessions[1].submit(IoOp.READ, 0, 1, on_complete=done.append)
        sim.run()
        assert len(done) == 1

    def test_gimbal_rejects_disconnect_with_target_side_backlog(self, sim):
        """Pending IO inside the switch blocks disconnect too."""
        network = Network(sim)
        device = SsdDevice(sim)
        precondition_clean(device)
        target = NvmeOfTarget(sim, network, "j", {"ssd0": device}, GimbalScheduler)
        session = NvmeOfInitiator(sim, network, "c").connect(
            "t", target, "ssd0", policy=CreditClientPolicy()
        )
        for _ in range(4):
            session.submit(IoOp.READ, 0, 32)
        sim.run(until_us=20.0)  # capsules en route / queued at the switch
        with pytest.raises(RuntimeError):
            session.disconnect()
        sim.run()
        session.disconnect()
