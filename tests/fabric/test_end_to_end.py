"""End-to-end fabric tests: initiator -> target -> device -> response."""

from __future__ import annotations

import pytest

from repro.baselines import FifoScheduler
from repro.fabric import (
    CreditClientPolicy,
    Network,
    NvmeOfInitiator,
    NvmeOfTarget,
    PardaClientPolicy,
    UnlimitedClientPolicy,
    WindowClientPolicy,
)
from repro.core import GimbalScheduler
from repro.sim import Simulator
from repro.ssd import NullDevice, SsdDevice, precondition_clean
from repro.ssd.commands import IoOp


def build_rig(sim, scheduler_factory=FifoScheduler, policy=None, device=None):
    network = Network(sim)
    device = device or NullDevice(sim)
    target = NvmeOfTarget(
        sim, network, "jbof", {"ssd0": device}, scheduler_factory=scheduler_factory
    )
    initiator = NvmeOfInitiator(sim, network, "client")
    session = initiator.connect(
        "tenant-a", target, "ssd0", policy=policy or UnlimitedClientPolicy()
    )
    return network, device, target, session


class TestRequestFlow:
    def test_read_completes_end_to_end(self, sim):
        _, _, _, session = build_rig(sim)
        done = []
        session.submit(IoOp.READ, 0, 1, on_complete=done.append)
        sim.run()
        assert len(done) == 1
        request = done[0]
        assert request.e2e_latency_us > 0
        assert request.t_target_arrival > request.t_client_submit
        assert request.t_device_submit >= request.t_target_arrival
        assert request.t_client_complete > request.t_device_complete

    def test_write_fetches_data_before_device(self, sim):
        """Writes RDMA_READ their payload, adding a client->target data
        transfer before the device sees the IO."""
        _, _, _, session = build_rig(sim)
        read_done = []
        write_done = []
        session.submit(IoOp.READ, 0, 32, on_complete=read_done.append)
        sim.run()
        session.submit(IoOp.WRITE, 0, 32, on_complete=write_done.append)
        sim.run()
        write_req = write_done[0]
        read_req = read_done[0]
        # The write's target->device gap includes the payload transfer.
        write_gap = write_req.t_device_submit - write_req.t_target_arrival
        read_gap = read_req.t_device_submit - read_req.t_target_arrival
        assert write_gap > read_gap

    def test_real_device_latency_dominates(self, sim):
        device = SsdDevice(sim)
        precondition_clean(device)
        _, _, _, session = build_rig(sim, device=device)
        done = []
        session.submit(IoOp.READ, 0, 1, on_complete=done.append)
        sim.run()
        request = done[0]
        assert request.device_latency_us > 60.0
        assert request.e2e_latency_us > request.device_latency_us

    def test_closed_loop_sustains_throughput(self, sim):
        _, device, _, session = build_rig(sim)
        state = {"count": 0}

        def on_complete(request):
            state["count"] += 1
            if sim.now < 10_000.0:
                session.submit(IoOp.READ, 0, 1, on_complete=on_complete)

        for _ in range(8):
            session.submit(IoOp.READ, 0, 1, on_complete=on_complete)
        sim.run(until_us=20_000.0)
        assert state["count"] > 1000

    def test_unknown_ssd_rejected(self, sim):
        network = Network(sim)
        target = NvmeOfTarget(sim, network, "jbof", {"ssd0": NullDevice(sim)}, FifoScheduler)
        initiator = NvmeOfInitiator(sim, network, "client")
        with pytest.raises(KeyError):
            initiator.connect("t", target, "nope")

    def test_target_requires_devices(self, sim):
        network = Network(sim)
        with pytest.raises(ValueError):
            NvmeOfTarget(sim, network, "jbof", {}, FifoScheduler)


class TestClientPolicies:
    def test_window_policy_limits_inflight(self, sim):
        _, _, _, session = build_rig(sim, policy=WindowClientPolicy(window=2))
        for _ in range(10):
            session.submit(IoOp.READ, 0, 1)
        assert session.inflight == 2
        assert session.queued == 8

    def test_unlimited_policy_fills_queue_depth(self, sim):
        _, _, _, session = build_rig(sim)
        for _ in range(10):
            session.submit(IoOp.READ, 0, 1)
        assert session.inflight == 10

    def test_credit_policy_follows_grants(self, sim):
        policy = CreditClientPolicy(initial_credit=2)
        _, _, _, session = build_rig(
            sim, scheduler_factory=GimbalScheduler, policy=policy
        )
        for _ in range(50):
            session.submit(IoOp.READ, 0, 1)
        assert session.inflight <= 2
        sim.run()
        # Gimbal granted credits on completions.
        assert policy.credit_total > 0
        assert session.completed == 50

    def test_parda_policy_window_shrinks_on_high_latency(self, sim):
        policy = PardaClientPolicy(latency_threshold_us=100.0, epoch_us=10.0)
        policy_session = build_rig(sim, policy=policy)[3]
        device = SsdDevice(sim, name="slow")  # unconditioned: reads hit NAND
        # Draw latency samples through fake completions instead: drive
        # the real path and check the window moved downward.
        before = policy.window
        for _ in range(64):
            policy_session.submit(IoOp.READ, 0, 1)
        sim.run()
        # NULL device latencies ~ network only (~10us) < threshold 100:
        # window should have grown, not shrunk.
        assert policy.window >= before

    def test_parda_window_grows_when_fast(self, sim):
        policy = PardaClientPolicy(latency_threshold_us=10_000.0, epoch_us=100.0)
        _, _, _, session = build_rig(sim, policy=policy)
        state = {"n": 0}

        def loop(request):
            state["n"] += 1
            if sim.now < 5000.0:
                session.submit(IoOp.READ, 0, 1, on_complete=loop)

        for _ in range(4):
            session.submit(IoOp.READ, 0, 1, on_complete=loop)
        sim.run(until_us=10_000.0)
        assert policy.window > 8.0

    def test_policy_cannot_be_rebound(self, sim):
        policy = WindowClientPolicy(window=2)
        build_rig(sim, policy=policy)
        with pytest.raises(RuntimeError):
            build_rig(sim, policy=policy)


class TestCycleAccounting:
    def test_cores_accumulate_tagged_work(self, sim):
        _, _, target, session = build_rig(sim)
        done = []
        for _ in range(10):
            session.submit(IoOp.READ, 0, 1, on_complete=done.append)
        sim.run()
        core = target.cores[0]
        assert core.events_by_tag["submit"] == 10
        assert core.events_by_tag["complete"] == 10
        assert core.busy_us_total > 0
